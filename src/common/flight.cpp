#include "common/flight.hpp"

#include <fcntl.h>
#include <signal.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>

#include "common/trace.hpp"

namespace gpumine {
namespace {

// All flight-recorder storage is static and fixed at compile time so
// the crash handler never allocates and every pointer it touches is
// valid no matter where the crash happened.

struct SpanSlot {
  // Torn-write detector: odd while the owner is writing, even (and
  // monotonically increasing) once the slot is published. The crash
  // handler skips slots whose seq changes or is odd mid-read — another
  // thread may still be recording while we dump.
  std::atomic<std::uint32_t> seq{0};
  char name[FlightRecorder::kSpanNameBytes];
  std::uint64_t start_ns;
  std::uint64_t duration_ns;
  std::uint32_t depth;
};

struct SpanRing {
  std::atomic<std::uint64_t> count{0};
  SpanSlot slots[FlightRecorder::kSpanRingSize];
};

struct LogSlot {
  // 0 while (re)writing; the final byte length once published.
  std::atomic<std::uint32_t> len{0};
  char data[FlightRecorder::kLogLineBytes];
};

SpanRing g_rings[FlightRecorder::kMaxThreads];
std::atomic<std::uint32_t> g_num_rings{0};

LogSlot g_log[FlightRecorder::kLogRingSize];
std::atomic<std::uint64_t> g_log_count{0};
std::atomic<std::uint64_t> g_log_dropped{0};

SpanRing* ring_for_this_thread() {
  thread_local SpanRing* ring = [] {
    const std::uint32_t idx =
        g_num_rings.fetch_add(1, std::memory_order_relaxed);
    return idx < FlightRecorder::kMaxThreads ? &g_rings[idx] : nullptr;
  }();
  return ring;
}

// --- crash-dump plumbing ----------------------------------------------------

std::atomic<int> g_dump_fd{-1};
std::atomic<bool> g_armed{false};
std::atomic<bool> g_dumping{false};
struct sigaction g_old_segv, g_old_abrt, g_old_bus;

/// Buffered writer over a raw fd using only async-signal-safe calls.
struct FdWriter {
  explicit FdWriter(int fd_in) : fd(fd_in) {}
  int fd;
  char buf[1024];
  std::size_t n = 0;
  bool failed = false;

  void flush() {
    std::size_t off = 0;
    while (off < n) {
      const ssize_t w = ::write(fd, buf + off, n - off);
      if (w <= 0) {
        failed = true;
        break;
      }
      off += static_cast<std::size_t>(w);
    }
    n = 0;
  }
  void put(char c) {
    if (n == sizeof(buf)) flush();
    buf[n++] = c;
  }
  void str(const char* s) {
    while (*s != '\0') put(*s++);
  }
  void u64(std::uint64_t v) {
    char tmp[20];
    int i = 0;
    do {
      tmp[i++] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    while (i > 0) put(tmp[--i]);
  }
  /// Nanoseconds as microseconds with exactly three decimals — matches
  /// the regular exporter's precision without touching floating point.
  void us_from_ns(std::uint64_t ns) {
    u64(ns / 1000);
    put('.');
    const std::uint64_t r = ns % 1000;
    put(static_cast<char>('0' + r / 100));
    put(static_cast<char>('0' + (r / 10) % 10));
    put(static_cast<char>('0' + r % 10));
  }
  /// JSON string contents; control characters become '?' so the
  /// handler never needs \u escapes.
  void escaped(const char* s, std::size_t max) {
    for (std::size_t i = 0; i < max && s[i] != '\0'; ++i) {
      const char c = s[i];
      if (c == '"' || c == '\\') {
        put('\\');
        put(c);
      } else if (static_cast<unsigned char>(c) < 0x20) {
        put('?');
      } else {
        put(c);
      }
    }
  }
};

std::uint64_t monotonic_ns() {
  struct timespec ts;
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

/// The whole dump, using only async-signal-safe calls. Also the body of
/// the normal-context dump_file().
void write_dump_to_fd(int fd, int sig) {
  FdWriter w(fd);
  w.str("{\"displayTimeUnit\":\"ms\",\"crash_signal\":");
  w.u64(static_cast<std::uint64_t>(sig));
  w.str(",\"traceEvents\":[");
  // A synthetic marker span on its own tid: traceEvents is never empty,
  // and the dump moment is visible on the timeline.
  w.str("\n{\"name\":\"flight/dump\",\"ph\":\"X\",\"ts\":");
  w.us_from_ns(monotonic_ns());
  w.str(",\"dur\":0,\"pid\":1,\"tid\":9999,\"args\":{\"depth\":0}}");

  const std::uint32_t rings = std::min<std::uint32_t>(
      g_num_rings.load(std::memory_order_acquire),
      static_cast<std::uint32_t>(FlightRecorder::kMaxThreads));
  for (std::uint32_t r = 0; r < rings; ++r) {
    const SpanRing& ring = g_rings[r];
    const std::uint64_t count = ring.count.load(std::memory_order_acquire);
    const std::uint64_t avail =
        std::min<std::uint64_t>(count, FlightRecorder::kSpanRingSize);
    for (std::uint64_t i = count - avail; i < count; ++i) {
      const SpanSlot& slot = ring.slots[i % FlightRecorder::kSpanRingSize];
      const std::uint32_t seq1 = slot.seq.load(std::memory_order_acquire);
      if ((seq1 & 1u) != 0) continue;  // mid-write
      char name[FlightRecorder::kSpanNameBytes];
      std::memcpy(name, slot.name, sizeof(name));
      const std::uint64_t start_ns = slot.start_ns;
      const std::uint64_t duration_ns = slot.duration_ns;
      const std::uint32_t depth = slot.depth;
      if (slot.seq.load(std::memory_order_acquire) != seq1) continue;
      name[sizeof(name) - 1] = '\0';
      w.str(",\n{\"name\":\"");
      w.escaped(name, sizeof(name));
      w.str("\",\"ph\":\"X\",\"ts\":");
      w.us_from_ns(start_ns);
      w.str(",\"dur\":");
      w.us_from_ns(duration_ns);
      w.str(",\"pid\":1,\"tid\":");
      w.u64(r);
      w.str(",\"args\":{\"depth\":");
      w.u64(depth);
      w.str("}}");
    }
  }
  w.str("\n],\"log\":[");

  const std::uint64_t log_count = g_log_count.load(std::memory_order_acquire);
  const std::uint64_t log_avail =
      std::min<std::uint64_t>(log_count, FlightRecorder::kLogRingSize);
  bool first = true;
  for (std::uint64_t i = log_count - log_avail; i < log_count; ++i) {
    const LogSlot& slot = g_log[i % FlightRecorder::kLogRingSize];
    const std::uint32_t len = slot.len.load(std::memory_order_acquire);
    if (len == 0 || len > FlightRecorder::kLogLineBytes) continue;
    if (slot.data[0] != '{' || slot.data[len - 1] != '}') continue;
    if (!first) w.put(',');
    first = false;
    w.put('\n');
    for (std::uint32_t b = 0; b < len; ++b) w.put(slot.data[b]);
  }
  const std::uint64_t dropped = g_log_dropped.load(std::memory_order_relaxed);
  if (dropped != 0) {
    if (!first) w.put(',');
    w.str("\n{\"flight_dropped_logs\":");
    w.u64(dropped);
    w.put('}');
  }
  w.str("\n]}\n");
  w.flush();
}

void crash_handler(int sig) {
  // One dump per process: a fault inside the handler (or a second
  // signal on another thread) must not recurse into the writer.
  if (!g_dumping.exchange(true, std::memory_order_acq_rel)) {
    const int fd = g_dump_fd.load(std::memory_order_acquire);
    if (fd >= 0) {
      write_dump_to_fd(fd, sig);
      ::fsync(fd);
    }
  }
  struct sigaction dfl;
  std::memset(&dfl, 0, sizeof(dfl));
  dfl.sa_handler = SIG_DFL;
  ::sigaction(sig, &dfl, nullptr);
  ::raise(sig);
}

}  // namespace

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::enable_recording() {
  Tracer::instance().set_flight_recording(true);
}

void FlightRecorder::disable_recording() {
  Tracer::instance().set_flight_recording(false);
}

bool FlightRecorder::recording() const {
  return Tracer::instance().flight_recording();
}

void FlightRecorder::record_span(const char* name, std::uint64_t start_ns,
                                 std::uint64_t duration_ns,
                                 std::uint32_t depth) {
  SpanRing* ring = ring_for_this_thread();
  if (ring == nullptr) return;  // beyond kMaxThreads: drop
  const std::uint64_t n = ring->count.load(std::memory_order_relaxed);
  SpanSlot& slot = ring->slots[n % kSpanRingSize];
  const std::uint32_t seq = slot.seq.load(std::memory_order_relaxed);
  slot.seq.store(seq | 1u, std::memory_order_relaxed);
  std::strncpy(slot.name, name, sizeof(slot.name) - 1);
  slot.name[sizeof(slot.name) - 1] = '\0';
  slot.start_ns = start_ns;
  slot.duration_ns = duration_ns;
  slot.depth = depth;
  slot.seq.store((seq | 1u) + 1u, std::memory_order_release);
  ring->count.store(n + 1, std::memory_order_release);
}

void FlightRecorder::record_log(const char* line, std::size_t len) {
  if (len == 0 || len > kLogLineBytes) {
    g_log_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::uint64_t n = g_log_count.fetch_add(1, std::memory_order_relaxed);
  LogSlot& slot = g_log[n % kLogRingSize];
  slot.len.store(0, std::memory_order_release);
  std::memcpy(slot.data, line, len);
  slot.len.store(static_cast<std::uint32_t>(len), std::memory_order_release);
}

Result<bool> FlightRecorder::arm_crash_dump(const std::string& path) {
  disarm_crash_dump();
  const int fd =
      ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Error{path, "cannot open flight-recorder dump file"};
  }
  g_dump_fd.store(fd, std::memory_order_release);
  g_dumping.store(false, std::memory_order_relaxed);

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = crash_handler;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGSEGV, &sa, &g_old_segv);
  ::sigaction(SIGABRT, &sa, &g_old_abrt);
  ::sigaction(SIGBUS, &sa, &g_old_bus);
  g_armed.store(true, std::memory_order_release);

  enable_recording();
  return true;
}

void FlightRecorder::disarm_crash_dump() {
  if (g_armed.exchange(false, std::memory_order_acq_rel)) {
    ::sigaction(SIGSEGV, &g_old_segv, nullptr);
    ::sigaction(SIGABRT, &g_old_abrt, nullptr);
    ::sigaction(SIGBUS, &g_old_bus, nullptr);
  }
  const int fd = g_dump_fd.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) ::close(fd);
}

Result<bool> FlightRecorder::dump_file(const std::string& path,
                                       int signal) const {
  const int fd =
      ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Error{path, "cannot open flight-recorder dump file"};
  }
  write_dump_to_fd(fd, signal);
  if (::close(fd) != 0) {
    return Error{path, "error writing flight-recorder dump"};
  }
  return true;
}

std::vector<FlightRecorder::SpanCopy> FlightRecorder::thread_spans_since(
    std::uint64_t since_ns) const {
  std::vector<SpanCopy> out;
  SpanRing* ring = ring_for_this_thread();
  if (ring == nullptr) return out;
  const std::uint64_t count = ring->count.load(std::memory_order_acquire);
  const std::uint64_t avail = std::min<std::uint64_t>(count, kSpanRingSize);
  for (std::uint64_t i = count - avail; i < count; ++i) {
    const SpanSlot& slot = ring->slots[i % kSpanRingSize];
    if (slot.start_ns < since_ns) continue;
    SpanCopy copy;
    copy.name.assign(slot.name,
                     strnlen(slot.name, sizeof(slot.name)));
    copy.start_ns = slot.start_ns;
    copy.duration_ns = slot.duration_ns;
    copy.depth = slot.depth;
    out.push_back(std::move(copy));
  }
  return out;
}

std::size_t FlightRecorder::retained_spans() const {
  std::size_t total = 0;
  const std::uint32_t rings = std::min<std::uint32_t>(
      g_num_rings.load(std::memory_order_acquire),
      static_cast<std::uint32_t>(kMaxThreads));
  for (std::uint32_t r = 0; r < rings; ++r) {
    total += static_cast<std::size_t>(std::min<std::uint64_t>(
        g_rings[r].count.load(std::memory_order_acquire), kSpanRingSize));
  }
  return total;
}

void FlightRecorder::reset_for_tests() {
  const std::uint32_t rings = std::min<std::uint32_t>(
      g_num_rings.load(std::memory_order_acquire),
      static_cast<std::uint32_t>(kMaxThreads));
  for (std::uint32_t r = 0; r < rings; ++r) {
    g_rings[r].count.store(0, std::memory_order_release);
  }
  for (LogSlot& slot : g_log) slot.len.store(0, std::memory_order_release);
  g_log_count.store(0, std::memory_order_release);
  g_log_dropped.store(0, std::memory_order_relaxed);
  g_dumping.store(false, std::memory_order_relaxed);
}

}  // namespace gpumine
