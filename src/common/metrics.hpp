// Unified metrics registry with Prometheus text exposition.
//
// Instruments are the hot path: a Counter is one relaxed fetch_add, a
// Gauge one relaxed store, a Histogram one bucket fetch_add plus a CAS
// loop on the running sum — no locks anywhere on the recording side.
// Registration (cold) takes a mutex and returns a reference that stays
// valid for the registry's lifetime, so call sites register once and
// cache the reference.
//
// A registry is an instantiable object (the serve layer builds a fresh
// one per scrape from its lock-free ServerMetrics snapshot; the CLI
// builds one from MiningMetrics for `--metrics-out`); `instance()` is
// the process-wide default for code that wants a shared sink.
// Collectors registered with add_collector() run at snapshot time, so
// adapters over existing metrics structs refresh their gauges exactly
// when a scrape happens.
//
// snapshot() is deterministic: families sorted by name, series sorted
// by their rendered label string — the series *set* of two registries
// fed the same registrations is byte-identical regardless of thread
// count or registration order. to_prometheus() renders text exposition
// format 0.0.4 (`# HELP` / `# TYPE` before samples, histograms as
// cumulative `_bucket`/`_sum`/`_count` with an explicit `+Inf` le).
// validate_prometheus_text() is the matching self-contained lint used
// by tests, `serve --check`, and the `metrics-check` subcommand.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.hpp"

namespace gpumine {

enum class MetricType { kCounter, kGauge, kHistogram };

[[nodiscard]] const char* to_string(MetricType type);

/// Label set for one series; keys are sorted (and checked unique) at
/// registration so identical label sets always compare equal.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Monotone event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bound histogram: `bounds` are ascending bucket upper bounds;
/// an implicit +Inf bucket catches everything above the last bound.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  /// Bulk-load pre-aggregated data (adapter path): adds `n` observations
  /// to bucket `i` (i == bounds().size() selects +Inf) and `sum` to the
  /// running sum, without per-value bucketing. Lets adapters over
  /// existing histogram structs (e.g. the serve LatencyHistogram)
  /// export their buckets losslessly.
  void merge_bucket(std::size_t i, std::uint64_t n, double sum);

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Non-cumulative count of bucket i (i == bounds().size() => +Inf).
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds+1 slots
  std::atomic<double> sum_{0.0};
  std::atomic<std::uint64_t> count_{0};
};

/// Point-in-time copy of one histogram series.
struct HistogramSnapshot {
  std::vector<double> bounds;               // ascending, without +Inf
  std::vector<std::uint64_t> cumulative;    // bounds+1 entries, last = count
  double sum = 0.0;
  std::uint64_t count = 0;
};

struct SeriesSnapshot {
  MetricLabels labels;          // key-sorted
  double value = 0.0;           // counter / gauge
  HistogramSnapshot histogram;  // histogram only
};

struct FamilySnapshot {
  std::string name;
  std::string help;
  MetricType type = MetricType::kGauge;
  std::vector<SeriesSnapshot> series;  // label-sorted
};

struct RegistrySnapshot {
  std::vector<FamilySnapshot> families;  // name-sorted

  /// Prometheus text exposition format 0.0.4.
  [[nodiscard]] std::string to_prometheus() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide default registry.
  static MetricsRegistry& instance();

  /// Registers (or finds) the series; the reference stays valid for the
  /// registry's lifetime. Re-registering the same (name, labels) with a
  /// different type or a conflicting label schema is a caller bug
  /// (GPUMINE_ENSURE). Names must match [a-zA-Z_:][a-zA-Z0-9_:]*.
  Counter& counter(std::string_view name, std::string_view help,
                   MetricLabels labels = {});
  Gauge& gauge(std::string_view name, std::string_view help,
               MetricLabels labels = {});
  Histogram& histogram(std::string_view name, std::string_view help,
                       std::vector<double> bounds, MetricLabels labels = {});

  /// Runs before every snapshot(): adapters over snapshot-style metrics
  /// structs refresh their gauges here.
  void add_collector(std::function<void()> update);

  /// Deterministic copy: families name-sorted, series label-sorted.
  [[nodiscard]] RegistrySnapshot snapshot() const;

  /// snapshot().to_prometheus().
  [[nodiscard]] std::string render_prometheus() const;

 private:
  struct Series {
    MetricLabels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    MetricType type = MetricType::kGauge;
    std::string help;
    std::vector<std::unique_ptr<Series>> series;
  };

  Series& series_for(std::string_view name, std::string_view help,
                     MetricType type, MetricLabels&& labels);

  mutable std::mutex mutex_;
  std::map<std::string, Family, std::less<>> families_;
  std::vector<std::function<void()>> collectors_;
};

/// Lints a text exposition document the way `promtool check metrics`
/// would: every sample's family declares `# HELP` and `# TYPE` first,
/// metric and label names are well-formed, no series appears twice,
/// families are not interleaved, counter samples are finite and
/// non-negative, and each histogram carries a `+Inf` bucket with
/// cumulative (monotone) bucket counts that agree with `_count`.
/// Returns the number of distinct series on success.
[[nodiscard]] Result<std::size_t> validate_prometheus_text(
    const std::string& text);

/// Same check over a file on disk.
[[nodiscard]] Result<std::size_t> validate_prometheus_file(
    const std::string& path);

}  // namespace gpumine
