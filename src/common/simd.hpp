// Runtime CPU dispatch for the vertical-mining kernels.
//
// The dense-bitmap intersection kernels in core/tidset.cpp come in
// three tiers: a portable scalar word loop, an unrolled word loop that
// autovectorizes on any 128-bit SIMD baseline (SSE2 / NEON), and an
// AVX2 intrinsics translation unit compiled with -mavx2 on that one
// file only. The strongest tier the build *and* the running CPU both
// support is selected once per process; `GPUMINE_KERNEL=scalar|word|
// avx2` overrides the choice (requests above what the machine supports
// are clamped down), and tests pin tiers via force_kernel_tier().
//
// Keeping -mavx2 off every other translation unit means the binary
// never executes an AVX2 instruction unless detection (or an explicit
// override on a capable machine) picked the AVX2 tier, so the same
// build runs on baseline x86-64 and on ARM.
#pragma once

#include <atomic>
#include <cstdlib>
#include <string_view>

namespace gpumine {

/// Kernel implementation tiers, weakest to strongest. A tier is only
/// eligible when the build carries its code *and* the CPU executes it.
enum class KernelTier : int {
  kScalar = 0,  // portable one-word-at-a-time loop
  kWord = 1,    // unrolled word loop (SSE2/NEON-safe autovectorization)
  kAvx2 = 2,    // AVX2 intrinsics (x86-64 only, -mavx2 on one TU)
};

[[nodiscard]] constexpr const char* kernel_tier_name(KernelTier tier) {
  switch (tier) {
    case KernelTier::kScalar:
      return "scalar";
    case KernelTier::kWord:
      return "word";
    case KernelTier::kAvx2:
      return "avx2";
  }
  return "unknown";
}

/// True when this build compiled the tier's kernels (the AVX2 TU is
/// only built on x86-64 with a compiler that accepts -mavx2).
[[nodiscard]] constexpr bool kernel_tier_compiled(KernelTier tier) {
#if defined(GPUMINE_HAVE_AVX2)
  (void)tier;
  return true;
#else
  return tier != KernelTier::kAvx2;
#endif
}

/// True when the running CPU can execute the tier.
[[nodiscard]] inline bool kernel_tier_runtime_ok(KernelTier tier) {
  if (tier != KernelTier::kAvx2) return true;
#if defined(GPUMINE_HAVE_AVX2)
  static const bool avx2 = __builtin_cpu_supports("avx2") != 0;
  return avx2;
#else
  return false;
#endif
}

[[nodiscard]] inline bool kernel_tier_supported(KernelTier tier) {
  return kernel_tier_compiled(tier) && kernel_tier_runtime_ok(tier);
}

/// Strongest tier the build and CPU support; the startup default.
[[nodiscard]] inline KernelTier detect_kernel_tier() {
  return kernel_tier_supported(KernelTier::kAvx2) ? KernelTier::kAvx2
                                                  : KernelTier::kWord;
}

namespace detail {

inline std::atomic<int>& kernel_tier_override() {
  static std::atomic<int> forced{-1};
  return forced;
}

/// GPUMINE_KERNEL=scalar|word|avx2, parsed once; -1 = unset / invalid.
inline int kernel_tier_from_env() {
  static const int tier = [] {
    const char* env = std::getenv("GPUMINE_KERNEL");
    if (env == nullptr) return -1;
    const std::string_view name(env);
    if (name == "scalar") return static_cast<int>(KernelTier::kScalar);
    if (name == "word") return static_cast<int>(KernelTier::kWord);
    if (name == "avx2") return static_cast<int>(KernelTier::kAvx2);
    return -1;
  }();
  return tier;
}

}  // namespace detail

/// The tier kernels actually run at: force_kernel_tier() beats the
/// GPUMINE_KERNEL environment override beats detection, and every
/// request is clamped down to the strongest supported tier, so asking
/// for avx2 on a non-AVX2 machine degrades instead of faulting.
[[nodiscard]] inline KernelTier active_kernel_tier() {
  int requested =
      detail::kernel_tier_override().load(std::memory_order_relaxed);
  if (requested < 0) requested = detail::kernel_tier_from_env();
  if (requested < 0) return detect_kernel_tier();
  auto tier = static_cast<KernelTier>(requested);
  while (tier != KernelTier::kScalar && !kernel_tier_supported(tier)) {
    tier = static_cast<KernelTier>(static_cast<int>(tier) - 1);
  }
  return tier;
}

/// Test hook: pins active_kernel_tier() until cleared (still clamped to
/// what the machine supports). Not for production configuration — use
/// GPUMINE_KERNEL for that.
inline void force_kernel_tier(KernelTier tier) {
  detail::kernel_tier_override().store(static_cast<int>(tier),
                                       std::memory_order_relaxed);
}

inline void clear_forced_kernel_tier() {
  detail::kernel_tier_override().store(-1, std::memory_order_relaxed);
}

}  // namespace gpumine
