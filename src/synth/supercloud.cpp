#include "synth/supercloud.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/ensure.hpp"
#include "sim/cluster_sim.hpp"
#include "trace/monitor.hpp"
#include "trace/profile.hpp"

namespace gpumine::synth {
namespace {

using trace::ExitStatus;
using trace::GpuModel;
using trace::JobRecord;
using trace::Phase;
using trace::Rng;
using trace::UtilProfile;

enum class Archetype : std::size_t {
  kIdleDebug,      // SM stuck at 0, nothing in GPU memory      (Tab III A1)
  kInferenceIdle,  // memory resident, SM spikes round to 0%    (Tab III A2)
  kStableTrain,    // smooth high utilization
  kRegularTrain,   // mini-batch dip pattern
  kBigTrain,       // long runs; node failures and time limits  (Tab VI A2)
  kNewUserJob,     // exploratory low-utilization runs          (CIR1, C3)
  kCount,
};

constexpr std::array<double, static_cast<std::size_t>(Archetype::kCount)>
    kWeights = {0.07, 0.04, 0.16, 0.48, 0.15, 0.10};

struct DrawnJob {
  JobRecord record;
  sim::JobRequest request;
  UtilProfile sm;         // SM utilization profile (%)
  UtilProfile gmem_util;  // memory-bandwidth utilization profile (%)
};

ExitStatus pick_status(Rng& rng, double p_completed, double p_failed,
                       double p_killed, double p_timeout) {
  const double w[] = {p_completed, p_failed, p_killed, p_timeout};
  switch (rng.weighted_choice(w)) {
    case 0:
      return ExitStatus::kCompleted;
    case 1:
      return ExitStatus::kFailed;
    case 2:
      return ExitStatus::kKilled;
    default:
      return ExitStatus::kTimeout;
  }
}

DrawnJob draw_job(std::size_t index, Archetype type, const PrincipalPool& users,
                  double window_s, Rng& rng) {
  DrawnJob d;
  JobRecord& r = d.record;
  sim::JobRequest& q = d.request;
  r.job_id = index;
  r.submit_time_s = rng.uniform(0.0, window_s);
  q.submit_time_s = r.submit_time_s;
  r.gpu_model = GpuModel::kV100;
  q.pool = GpuModel::kV100;
  // 97% single-GPU (Sec. IV-C) — the "Single GPU" item is later removed
  // by the 80% dominance filter, exactly as in the paper.
  r.num_gpus = rng.bernoulli(0.97) ? 1 : 2;
  q.num_gpus = r.num_gpus;

  switch (type) {
    case Archetype::kIdleDebug: {
      r.user = users.draw(rng, 0.12, 0.38, 0.50);
      q.run_duration_s = std::max(30.0, rng.lognormal(std::log(180.0), 0.7));
      q.intended = pick_status(rng, 0.25, 0.30, 0.45, 0.0);
      q.abort_frac = rng.uniform(0.4, 1.0);
      d.sm = UtilProfile::constant(0.0, 0.0, 0.0, 100.0);
      d.gmem_util = UtilProfile::constant(rng.uniform(0.2, 0.8), 0.1, 0.0, 100.0);
      r.gmem_used_gb = rng.uniform(0.05, 0.4);
      r.gpu_power_w = rng.normal_clamped(30.0, 3.0, 24.0, 38.0);
      r.cpu_util = rng.normal_clamped(4.0, 2.0, 0.5, 10.0);
      break;
    }
    case Archetype::kInferenceIdle: {
      r.user = users.draw(rng, 0.10, 0.80, 0.10);
      q.run_duration_s = std::max(1800.0, rng.lognormal(std::log(14400.0), 0.6));
      q.intended = pick_status(rng, 0.90, 0.0, 0.10, 0.0);
      q.abort_frac = rng.uniform(0.5, 1.0);
      // Occasional inference burst: mean rounds to 0%, variance does not.
      d.sm = UtilProfile(
          {Phase{.duration_frac = 1.0, .burst_prob = 0.01, .burst_lo = 30.0,
                 .burst_hi = 60.0}},
          0.0, 100.0);
      d.gmem_util = UtilProfile::constant(rng.uniform(1.0, 3.0), 0.3, 0.0, 100.0);
      r.gmem_used_gb = rng.uniform(8.0, 20.0);  // model stays resident
      r.gpu_power_w = rng.normal_clamped(48.0, 4.0, 40.0, 58.0);
      r.cpu_util = rng.normal_clamped(5.0, 2.0, 0.5, 12.0);
      break;
    }
    case Archetype::kStableTrain: {
      r.user = users.draw(rng, 0.14, 0.66, 0.20);
      q.run_duration_s = std::max(600.0, rng.lognormal(std::log(7200.0), 0.7));
      q.intended = pick_status(rng, 0.92, 0.05, 0.03, 0.0);
      q.abort_frac = rng.uniform(0.3, 0.95);
      d.sm = UtilProfile::constant(rng.uniform(70.0, 95.0), 1.5, 0.0, 100.0);
      d.gmem_util =
          UtilProfile::constant(rng.uniform(30.0, 70.0), 2.0, 0.0, 100.0);
      r.gmem_used_gb = rng.uniform(8.0, 28.0);
      r.gpu_power_w = rng.normal_clamped(230.0, 30.0, 170.0, 300.0);
      r.cpu_util = rng.normal_clamped(40.0, 12.0, 15.0, 75.0);
      break;
    }
    case Archetype::kRegularTrain: {
      r.user = users.draw(rng, 0.10, 0.70, 0.20);
      q.run_duration_s = std::max(300.0, rng.lognormal(std::log(10800.0), 0.9));
      q.intended = pick_status(rng, 0.88, 0.06, 0.06, 0.0);
      q.abort_frac = rng.uniform(0.3, 0.95);
      // Mini-batch pattern: dips during data loading.
      d.sm = UtilProfile(
          {Phase{1.0, rng.uniform(40.0, 90.0), 5.0, 30.0, 0.15, 15.0}}, 0.0,
          100.0);
      d.gmem_util = UtilProfile(
          {Phase{1.0, rng.uniform(20.0, 70.0), 5.0, 30.0, 0.15, 5.0}}, 0.0,
          100.0);
      r.gmem_used_gb = rng.uniform(4.0, 28.0);
      r.gpu_power_w = rng.normal_clamped(200.0, 45.0, 110.0, 300.0);
      r.cpu_util = rng.normal_clamped(40.0, 15.0, 10.0, 80.0);
      break;
    }
    case Archetype::kBigTrain: {
      r.user = users.draw(rng, 0.12, 0.68, 0.20);
      q.run_duration_s = std::max(7200.0, rng.lognormal(std::log(43200.0), 0.6));
      // Long runs hit node failures and allocation limits (Tab VI A2).
      q.intended = pick_status(rng, 0.62, 0.15, 0.13, 0.10);
      q.abort_frac = q.intended == ExitStatus::kTimeout
                         ? 1.0
                         : rng.uniform(0.5, 0.95);
      d.sm = UtilProfile::constant(rng.uniform(60.0, 95.0), 3.0, 0.0, 100.0);
      d.gmem_util =
          UtilProfile::constant(rng.uniform(30.0, 75.0), 3.0, 0.0, 100.0);
      r.gmem_used_gb = rng.uniform(8.0, 30.0);
      r.gpu_power_w = rng.normal_clamped(250.0, 30.0, 180.0, 300.0);
      r.cpu_util = rng.normal_clamped(45.0, 15.0, 15.0, 85.0);
      break;
    }
    case Archetype::kNewUserJob: {
      r.user = users.draw(rng, 0.02, 0.18, 0.80);
      q.run_duration_s = std::max(60.0, rng.lognormal(std::log(1200.0), 0.8));
      q.intended = pick_status(rng, 0.35, 0.30, 0.35, 0.0);
      q.abort_frac = rng.uniform(0.3, 1.0);
      d.sm = UtilProfile::constant(rng.uniform(3.0, 15.0), 2.0, 0.0, 100.0);
      d.gmem_util = UtilProfile::constant(rng.uniform(4.0, 10.0), 1.0, 0.0, 100.0);
      r.gmem_used_gb = rng.uniform(1.0, 4.0);
      r.gpu_power_w = rng.normal_clamped(55.0, 10.0, 38.0, 80.0);
      r.cpu_util = rng.normal_clamped(9.0, 4.0, 1.0, 20.0);
      break;
    }
    case Archetype::kCount:
      GPUMINE_ENSURE(false, "invalid archetype");
  }
  return d;
}

}  // namespace

SynthTrace generate_supercloud(const SuperCloudConfig& config) {
  GPUMINE_CHECK_ARG(config.num_jobs > 0, "num_jobs must be positive");
  const double window_s = config.trace_days * 86400.0;
  Rng root(config.seed);

  const PrincipalPool users("u", 8, 140, 900);

  std::vector<DrawnJob> drawn;
  drawn.reserve(config.num_jobs);
  {
    Rng mix = root.fork(1);
    for (std::size_t i = 0; i < config.num_jobs; ++i) {
      const auto type = static_cast<Archetype>(mix.weighted_choice(kWeights));
      Rng job_rng = root.fork(1000 + i);
      drawn.push_back(draw_job(i, type, users, window_s, job_rng));
    }
  }

  sim::ClusterSim cluster({{GpuModel::kV100, config.v100_gpus}});
  std::vector<sim::JobRequest> requests;
  requests.reserve(drawn.size());
  for (const DrawnJob& d : drawn) requests.push_back(d.request);
  const std::vector<sim::JobOutcome> outcomes =
      cluster.run(requests, {config.seed ^ 0x51b7u});

  SynthTrace out;
  auto& sched = out.scheduler;
  auto& job_id_s = sched.add_categorical("job_id");
  auto& user_c = sched.add_categorical("User");
  auto& runtime_c = sched.add_numeric("Runtime");
  auto& status_c = sched.add_categorical("Status");

  auto& node = out.node;
  auto& job_id_n = node.add_categorical("job_id");
  auto& cpu_util_c = node.add_numeric("CPU Util");
  auto& sm_util_c = node.add_numeric("SM Util");
  auto& sm_var_c = node.add_numeric("SM Util Var");
  auto& gmem_util_c = node.add_numeric("GMem Util");
  auto& gmem_var_c = node.add_numeric("GMem Util Var");
  auto& gmem_used_c = node.add_numeric("GMem Used");
  auto& power_c = node.add_numeric("GPU Power");

  const trace::MonitorConfig monitor{config.gpu_dt_s, config.max_samples};
  out.records.reserve(drawn.size());
  for (std::size_t i = 0; i < drawn.size(); ++i) {
    JobRecord r = drawn[i].record;
    const sim::JobOutcome& o = outcomes[i];
    r.queue_time_s = o.queue_time_s;
    r.runtime_s = o.runtime_s;
    r.status = o.status;

    // nvidia-smi series over the actual (possibly aborted) runtime.
    Rng sm_rng = root.fork(2'000'000 + i);
    const auto sm_stats =
        trace::sample_profile(drawn[i].sm, r.runtime_s, monitor, sm_rng).stats();
    Rng gm_rng = root.fork(3'000'000 + i);
    const auto gm_stats =
        trace::sample_profile(drawn[i].gmem_util, r.runtime_s, monitor, gm_rng)
            .stats();
    // nvidia-smi reports integer percentages; rounding the job mean is
    // what makes "SM Util = 0%" capture near-idle inference jobs too.
    r.sm_util = std::round(sm_stats.mean);
    r.sm_util_min = sm_stats.min;
    r.sm_util_max = sm_stats.max;
    r.sm_util_var = sm_stats.variance;
    r.gmem_util = gm_stats.mean;
    r.gmem_util_var = gm_stats.variance;

    const std::string id = std::to_string(r.job_id);
    job_id_s.push(id);
    user_c.push(r.user);
    runtime_c.push(r.runtime_s);
    status_c.push(std::string(to_string(r.status)));

    job_id_n.push(id);
    cpu_util_c.push(r.cpu_util);
    sm_util_c.push(r.sm_util);
    sm_var_c.push(r.sm_util_var);
    gmem_util_c.push(r.gmem_util);
    gmem_var_c.push(r.gmem_util_var);
    gmem_used_c.push(r.gmem_used_gb);
    power_c.push(r.gpu_power_w);

    out.records.push_back(std::move(r));
  }
  return out;
}

}  // namespace gpumine::synth
