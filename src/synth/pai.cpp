#include "synth/pai.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/ensure.hpp"
#include "sim/cluster_sim.hpp"

namespace gpumine::synth {
namespace {

using trace::ExitStatus;
using trace::GpuModel;
using trace::JobRecord;
using trace::Rng;

// Workload archetypes; weights sum to 1. The mixture is the calibration
// surface: each archetype maps to a family of paper rules.
enum class Archetype : std::size_t {
  kTemplateIdle,  // frequent-user template/debug jobs, SM = 0      (Tab II)
  kGroupFail,     // frequent-group import-error failures           (Tab V)
  kDistFail,      // wide distributed jobs failing before GPU use   (Tab V)
  kRecSys,        // recommender inference on T4, multiple tasks    (PAI3)
  kNlp,           // language models: zero CPU, top SM              (PAI4)
  kCv,            // vision training, healthy utilization
  kMiscOk,        // unlabeled healthy jobs
  kCount,
};

constexpr std::array<double, static_cast<std::size_t>(Archetype::kCount)>
    kWeights = {0.25, 0.12, 0.08, 0.12, 0.08, 0.20, 0.15};

constexpr double kStdCpuRequest = 600.0;  // ~50% of PAI jobs (Sec. IV-B)
constexpr double kStdMemRequest = 32.0;

struct DrawnJob {
  JobRecord record;
  sim::JobRequest request;
};

double short_runtime(Rng& rng) {  // debug-scale: median ~2 min
  return std::max(20.0, rng.lognormal(std::log(120.0), 0.7));
}

DrawnJob draw_job(std::size_t index, Archetype type, const PrincipalPool& users,
                  const PrincipalPool& groups, double window_s, Rng& rng) {
  DrawnJob d;
  JobRecord& r = d.record;
  sim::JobRequest& q = d.request;
  r.job_id = index;
  r.submit_time_s = rng.uniform(0.0, window_s);
  q.submit_time_s = r.submit_time_s;

  switch (type) {
    case Archetype::kTemplateIdle: {
      r.user = users.draw(rng, 0.80, 0.15, 0.05);
      r.group = rng.bernoulli(0.35) ? groups.heavy(rng) : groups.regular(rng);
      r.framework = rng.bernoulli(0.90) ? "Tensorflow" : "Other";
      r.gpu_model = rng.bernoulli(0.90) ? GpuModel::kNone : GpuModel::kNonT4;
      r.num_gpus = static_cast<int>(rng.uniform_int(2, 3));
      r.cpu_request_cores = rng.bernoulli(0.85)
                                ? kStdCpuRequest
                                : rng.uniform(100.0, 400.0);
      r.mem_request_gb =
          rng.bernoulli(0.85) ? kStdMemRequest : rng.lognormal(std::log(24.0), 0.5);
      q.run_duration_s = short_runtime(rng);
      q.intended = rng.bernoulli(0.50) ? ExitStatus::kFailed
                                       : ExitStatus::kCompleted;
      q.abort_frac = rng.uniform(0.3, 1.0);
      r.cpu_util = rng.normal_clamped(4.0, 2.0, 0.3, 12.0);
      r.mem_used_gb = rng.normal_clamped(1.5, 0.8, 0.1, 4.0);
      r.sm_util = 0.0;
      r.gmem_used_gb = 0.0;
      break;
    }
    case Archetype::kGroupFail: {
      r.user = users.draw(rng, 0.85, 0.15, 0.0001);
      r.group = groups.heavy(rng);
      r.framework = rng.bernoulli(0.95) ? "Tensorflow" : "Other";
      r.gpu_model = rng.bernoulli(0.95) ? GpuModel::kNone : GpuModel::kNonT4;
      r.num_gpus = static_cast<int>(rng.uniform_int(4, 8));
      r.cpu_request_cores = rng.uniform(20.0, 80.0);  // below-usual request
      r.mem_request_gb =
          rng.bernoulli(0.80) ? kStdMemRequest : rng.lognormal(std::log(16.0), 0.5);
      q.run_duration_s = std::max(20.0, rng.lognormal(std::log(150.0), 0.6));
      q.intended = rng.bernoulli(0.95) ? ExitStatus::kFailed
                                       : ExitStatus::kCompleted;
      q.abort_frac = rng.uniform(0.2, 0.8);  // dies at library import
      r.cpu_util = rng.normal_clamped(3.0, 1.5, 0.3, 10.0);
      r.mem_used_gb = rng.normal_clamped(0.8, 0.5, 0.05, 2.5);
      r.sm_util = 0.0;
      r.gmem_used_gb = 0.0;
      break;
    }
    case Archetype::kDistFail: {
      r.user = users.draw(rng, 0.05, 0.85, 0.10);
      r.group = groups.regular(rng);
      r.framework = rng.bernoulli(0.60) ? "PyTorch" : "Tensorflow";
      r.gpu_model = rng.bernoulli(0.60) ? GpuModel::kNonT4 : GpuModel::kNone;
      r.num_gpus = static_cast<int>(rng.uniform_int(25, 96));
      r.cpu_request_cores = rng.uniform(150.0, 500.0);
      r.mem_request_gb = rng.lognormal(std::log(64.0), 0.4);
      q.run_duration_s = std::max(60.0, rng.lognormal(std::log(1800.0), 0.6));
      q.intended = rng.bernoulli(0.90) ? ExitStatus::kFailed
                                       : ExitStatus::kCompleted;
      q.abort_frac = rng.uniform(0.3, 0.9);  // a worker dies, gang fails
      r.cpu_util = rng.normal_clamped(10.0, 4.0, 1.0, 25.0);
      r.mem_used_gb = rng.normal_clamped(3.0, 1.5, 0.3, 8.0);
      r.sm_util = 0.0;
      r.gmem_used_gb = 0.0;
      break;
    }
    case Archetype::kRecSys: {
      r.user = users.draw(rng, 0.05, 0.85, 0.10);
      r.group = groups.regular(rng);
      r.framework = rng.bernoulli(0.55) ? "Tensorflow" : "Other";
      r.model_family = "RecSys";
      r.multi_task = rng.bernoulli(0.90);
      r.gpu_model = rng.bernoulli(0.90) ? GpuModel::kT4 : GpuModel::kNonT4;
      r.num_gpus = static_cast<int>(rng.uniform_int(4, 8));
      r.cpu_request_cores = rng.bernoulli(0.50)
                                ? kStdCpuRequest
                                : rng.uniform(200.0, 500.0);
      r.mem_request_gb =
          rng.bernoulli(0.30) ? kStdMemRequest : rng.lognormal(std::log(48.0), 0.4);
      q.run_duration_s = std::max(120.0, rng.lognormal(std::log(1200.0), 0.6));
      q.intended = rng.bernoulli(0.92) ? ExitStatus::kCompleted
                                       : ExitStatus::kFailed;
      q.abort_frac = rng.uniform(0.3, 0.9);
      r.cpu_util = rng.normal_clamped(35.0, 10.0, 10.0, 70.0);
      r.mem_used_gb = rng.normal_clamped(12.0, 4.0, 4.0, 32.0);
      r.sm_util = rng.normal_clamped(30.0, 10.0, 5.0, 60.0);
      r.gmem_used_gb = rng.normal_clamped(8.0, 3.0, 2.0, 15.0);
      break;
    }
    case Archetype::kNlp: {
      r.user = users.draw(rng, 0.05, 0.85, 0.10);
      r.group = groups.regular(rng);
      r.framework = rng.bernoulli(0.50) ? "Tensorflow" : "PyTorch";
      r.model_family = "NLP";
      r.gpu_model = rng.bernoulli(0.95) ? GpuModel::kNonT4 : GpuModel::kNone;
      r.num_gpus = static_cast<int>(rng.uniform_int(8, 32));
      r.cpu_request_cores = rng.bernoulli(0.40)
                                ? kStdCpuRequest
                                : rng.uniform(200.0, 500.0);
      r.mem_request_gb = rng.lognormal(std::log(96.0), 0.3);
      q.run_duration_s = std::max(600.0, rng.lognormal(std::log(28800.0), 0.5));
      q.intended = rng.bernoulli(0.90) ? ExitStatus::kCompleted
                                       : ExitStatus::kFailed;
      q.abort_frac = rng.uniform(0.5, 0.98);
      // All-GPU pipelines: the host does essentially nothing.
      r.cpu_util = rng.bernoulli(0.95) ? 0.0 : rng.uniform(0.5, 2.0);
      r.mem_used_gb = rng.normal_clamped(20.0, 6.0, 8.0, 48.0);
      r.sm_util = rng.normal_clamped(92.0, 4.0, 82.0, 100.0);
      r.gmem_used_gb = rng.normal_clamped(24.0, 5.0, 12.0, 32.0);
      break;
    }
    case Archetype::kCv: {
      r.user = users.draw(rng, 0.05, 0.80, 0.15);
      r.group = rng.bernoulli(0.05) ? groups.heavy(rng) : groups.regular(rng);
      r.framework = rng.bernoulli(0.50) ? "Tensorflow" : "PyTorch";
      r.model_family = "CV";
      const double type_draw = rng.uniform();
      r.gpu_model = type_draw < 0.50   ? GpuModel::kNonT4
                    : type_draw < 0.65 ? GpuModel::kT4
                                       : GpuModel::kNone;
      r.num_gpus = static_cast<int>(rng.uniform_int(4, 16));
      r.cpu_request_cores = rng.bernoulli(0.45)
                                ? kStdCpuRequest
                                : rng.uniform(150.0, 500.0);
      r.mem_request_gb =
          rng.bernoulli(0.30) ? kStdMemRequest : rng.lognormal(std::log(48.0), 0.4);
      q.run_duration_s = std::max(300.0, rng.lognormal(std::log(7200.0), 0.7));
      q.intended = rng.bernoulli(0.92) ? ExitStatus::kCompleted
                                       : ExitStatus::kFailed;
      q.abort_frac = rng.uniform(0.3, 0.95);
      r.cpu_util = rng.normal_clamped(40.0, 12.0, 15.0, 80.0);
      r.mem_used_gb = rng.normal_clamped(16.0, 5.0, 6.0, 40.0);
      r.sm_util = rng.normal_clamped(55.0, 15.0, 15.0, 95.0);
      r.gmem_used_gb = rng.normal_clamped(14.0, 4.0, 5.0, 30.0);
      break;
    }
    case Archetype::kMiscOk: {
      r.user = users.draw(rng, 0.05, 0.75, 0.20);
      r.group = rng.bernoulli(0.05) ? groups.heavy(rng) : groups.regular(rng);
      r.framework = rng.bernoulli(0.50) ? "Tensorflow" : "Other";
      const double type_draw = rng.uniform();
      r.gpu_model = type_draw < 0.40   ? GpuModel::kNonT4
                    : type_draw < 0.70 ? GpuModel::kNone
                                       : GpuModel::kT4;
      r.num_gpus = static_cast<int>(rng.uniform_int(4, 12));
      r.cpu_request_cores = rng.bernoulli(0.50)
                                ? kStdCpuRequest
                                : rng.uniform(150.0, 500.0);
      r.mem_request_gb =
          rng.bernoulli(0.40) ? kStdMemRequest : rng.lognormal(std::log(40.0), 0.5);
      q.run_duration_s = std::max(120.0, rng.lognormal(std::log(3600.0), 0.8));
      q.intended = rng.bernoulli(0.88) ? ExitStatus::kCompleted
                                       : ExitStatus::kFailed;
      q.abort_frac = rng.uniform(0.3, 0.95);
      r.cpu_util = rng.normal_clamped(30.0, 12.0, 8.0, 70.0);
      r.mem_used_gb = rng.normal_clamped(10.0, 4.0, 3.0, 30.0);
      r.sm_util = rng.normal_clamped(40.0, 15.0, 8.0, 85.0);
      r.gmem_used_gb = rng.normal_clamped(10.0, 4.0, 2.0, 28.0);
      break;
    }
    case Archetype::kCount:
      GPUMINE_ENSURE(false, "invalid archetype");
  }

  q.pool = r.gpu_model;
  q.num_gpus = r.num_gpus;
  return d;
}

}  // namespace

SynthTrace generate_pai(const PaiConfig& config) {
  GPUMINE_CHECK_ARG(config.num_jobs > 0, "num_jobs must be positive");
  GPUMINE_CHECK_ARG(config.arrival_rate_jobs_per_s > 0.0,
                    "arrival rate must be positive");
  const double window_s =
      static_cast<double>(config.num_jobs) / config.arrival_rate_jobs_per_s;
  Rng root(config.seed);

  const PrincipalPool users("u", 12, 600, 2500);
  const PrincipalPool groups("g", 8, 400, 1200);

  std::vector<DrawnJob> drawn;
  drawn.reserve(config.num_jobs);
  {
    Rng mix = root.fork(1);
    for (std::size_t i = 0; i < config.num_jobs; ++i) {
      const auto type = static_cast<Archetype>(mix.weighted_choice(kWeights));
      Rng job_rng = root.fork(1000 + i);
      drawn.push_back(draw_job(i, type, users, groups, window_s, job_rng));
    }
  }

  // Queueing + outcome via the cluster simulator.
  sim::ClusterSim cluster({{GpuModel::kT4, config.t4_gpus},
                           {GpuModel::kNonT4, config.non_t4_gpus},
                           {GpuModel::kNone, config.misc_gpus}});
  std::vector<sim::JobRequest> requests;
  requests.reserve(drawn.size());
  for (const DrawnJob& d : drawn) requests.push_back(d.request);
  const std::vector<sim::JobOutcome> outcomes =
      cluster.run(requests, {config.seed ^ 0x9e37u});

  SynthTrace out;
  auto& sched = out.scheduler;
  auto& job_id_s = sched.add_categorical("job_id");
  auto& user_c = sched.add_categorical("User");
  auto& group_c = sched.add_categorical("Group");
  auto& framework_c = sched.add_categorical("Framework");
  auto& model_c = sched.add_categorical("Model");
  auto& tasks_c = sched.add_categorical("Tasks");
  auto& gpu_type_c = sched.add_categorical("GPU Type");
  auto& gpu_req_c = sched.add_numeric("GPU Request");
  auto& cpu_req_c = sched.add_numeric("CPU Request");
  auto& mem_req_c = sched.add_numeric("Mem Request");
  auto& queue_c = sched.add_numeric("Queue");
  auto& runtime_c = sched.add_numeric("Runtime");
  auto& status_c = sched.add_categorical("Status");

  auto& node = out.node;
  auto& job_id_n = node.add_categorical("job_id");
  auto& cpu_util_c = node.add_numeric("CPU Util");
  auto& mem_used_c = node.add_numeric("Memory Used");
  auto& sm_util_c = node.add_numeric("SM Util");
  auto& gmem_used_c = node.add_numeric("GMem Used");

  out.records.reserve(drawn.size());
  Rng queue_noise = root.fork(2);
  for (std::size_t i = 0; i < drawn.size(); ++i) {
    JobRecord r = drawn[i].record;
    const sim::JobOutcome& o = outcomes[i];
    // Scheduler dispatch latency keeps queue times strictly positive so
    // equal-frequency bins stay meaningful under heavy zero ties.
    r.queue_time_s =
        o.queue_time_s + queue_noise.lognormal(std::log(20.0), 0.8);
    r.runtime_s = o.runtime_s;
    r.status = o.status;
    r.num_attempts = o.attempts;

    const std::string id = std::to_string(r.job_id);
    job_id_s.push(id);
    user_c.push(r.user);
    group_c.push(r.group);
    framework_c.push(r.framework);
    if (r.model_family.empty()) {
      model_c.push_missing();
    } else {
      model_c.push(r.model_family);
    }
    tasks_c.push(r.multi_task ? "Multiple Tasks" : "Single Task");
    gpu_type_c.push(std::string(to_string(r.gpu_model)));
    gpu_req_c.push(r.num_gpus);
    cpu_req_c.push(r.cpu_request_cores);
    mem_req_c.push(r.mem_request_gb);
    queue_c.push(r.queue_time_s);
    runtime_c.push(r.runtime_s);
    status_c.push(r.status == ExitStatus::kCompleted ? "Terminated" : "Failed");

    job_id_n.push(id);
    cpu_util_c.push(r.cpu_util);
    mem_used_c.push(r.mem_used_gb);
    sm_util_c.push(r.sm_util);
    gmem_used_c.push(r.gmem_used_gb);

    out.records.push_back(std::move(r));
  }
  return out;
}

}  // namespace gpumine::synth
