#include "synth/philly.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/ensure.hpp"
#include "sim/cluster_sim.hpp"
#include "trace/monitor.hpp"
#include "trace/profile.hpp"

namespace gpumine::synth {
namespace {

using trace::ExitStatus;
using trace::GpuModel;
using trace::JobRecord;
using trace::Phase;
using trace::Rng;
using trace::UtilProfile;

enum class Archetype : std::size_t {
  kIdleShort,  // SM pinned at 0, short, CPU-idle           (Tab IV C1/C2)
  kStandard,   // healthy single-GPU training
  kMultiGpu,   // distributed; gang failures, long runtimes (Tab VII C1, PHI1)
  kLongFail,   // long single-GPU runs failing late          (Tab VII A2)
  kCount,
};

constexpr std::array<double, static_cast<std::size_t>(Archetype::kCount)>
    kWeights = {0.33, 0.47, 0.14, 0.06};

struct DrawnJob {
  JobRecord record;
  sim::JobRequest request;
  UtilProfile sm;
};

GpuModel pick_pool(Rng& rng, double p_24gb) {
  return rng.bernoulli(p_24gb) ? GpuModel::kMem24GB : GpuModel::kMem12GB;
}

DrawnJob draw_job(std::size_t index, Archetype type, const PrincipalPool& users,
                  double window_s, Rng& rng) {
  DrawnJob d;
  JobRecord& r = d.record;
  sim::JobRequest& q = d.request;
  r.job_id = index;
  r.submit_time_s = rng.uniform(0.0, window_s);
  q.submit_time_s = r.submit_time_s;

  // Philly auto-retries on error; not every error gets another attempt.
  auto retry_policy = [&](bool failing) {
    if (!failing) {
      q.max_attempts = 1;
      return;
    }
    const double u = rng.uniform();
    q.max_attempts = u < 0.40 ? 1 : (u < 0.85 ? 2 : 3);
    q.retry_success_prob = 0.20;
  };

  switch (type) {
    case Archetype::kIdleShort: {
      const bool from_new_user = rng.bernoulli(0.25);
      r.user = from_new_user ? users.rare(rng)
                             : users.draw(rng, 0.15, 0.85, 0.0001);
      r.gpu_model = pick_pool(rng, 0.30);
      r.num_gpus = 1;
      q.run_duration_s = std::max(60.0, rng.lognormal(std::log(300.0), 0.8));
      const double fail_p = from_new_user ? 0.20 : 0.07;
      const double u = rng.uniform();
      q.intended = u < fail_p                ? ExitStatus::kFailed
                   : u < fail_p + 0.30       ? ExitStatus::kKilled
                                             : ExitStatus::kCompleted;
      q.abort_frac = rng.uniform(0.4, 1.0);
      retry_policy(q.intended == ExitStatus::kFailed);
      d.sm = UtilProfile::constant(0.0, 0.0, 0.0, 100.0);
      r.cpu_util = rng.normal_clamped(4.0, 2.0, 0.5, 10.0);
      break;
    }
    case Archetype::kStandard: {
      r.user = rng.bernoulli(0.10) ? users.rare(rng)
                                   : users.draw(rng, 0.20, 0.80, 0.0001);
      r.gpu_model = pick_pool(rng, 0.30);
      r.num_gpus = 1;
      q.run_duration_s = std::max(300.0, rng.lognormal(std::log(5400.0), 0.8));
      const double u = rng.uniform();
      q.intended = u < 0.07   ? ExitStatus::kFailed
                   : u < 0.15 ? ExitStatus::kKilled
                              : ExitStatus::kCompleted;
      q.abort_frac = rng.uniform(0.3, 0.95);
      retry_policy(q.intended == ExitStatus::kFailed);
      // Warm-up then steady compute; data-loading dips stay above zero.
      d.sm = UtilProfile(
          {Phase{0.05, 30.0, 4.0, 0.0, 0.0, 0.0},
           Phase{0.95, rng.uniform(55.0, 90.0), 4.0, 300.0, 0.1,
                 rng.uniform(15.0, 30.0)}},
          5.0, 100.0);
      r.cpu_util = rng.normal_clamped(38.0, 12.0, 12.0, 75.0);
      break;
    }
    case Archetype::kMultiGpu: {
      const bool from_new_user = rng.bernoulli(0.45);
      r.user = from_new_user ? users.rare(rng)
                             : users.draw(rng, 0.20, 0.80, 0.0001);
      r.gpu_model = pick_pool(rng, 0.35);
      r.num_gpus = static_cast<int>(rng.uniform_int(2, 8));
      q.run_duration_s = std::max(1800.0, rng.lognormal(std::log(28800.0), 0.7));
      const double fail_p = from_new_user ? 0.65 : 0.38;
      const double u = rng.uniform();
      q.intended = u < fail_p          ? ExitStatus::kFailed
                   : u < fail_p + 0.05 ? ExitStatus::kKilled
                                       : ExitStatus::kCompleted;
      q.abort_frac = rng.uniform(0.2, 0.9);  // one worker dies, gang dies
      retry_policy(q.intended == ExitStatus::kFailed);
      if (rng.bernoulli(0.05)) {
        // Crash before the first iteration: whole job idle.
        d.sm = UtilProfile::constant(0.0, 0.0, 0.0, 100.0);
      } else {
        // Synchronization stalls drag per-minute samples to zero.
        d.sm = UtilProfile(
            {Phase{1.0, rng.uniform(50.0, 85.0), 5.0, 600.0, 0.12, 0.0}}, 0.0,
            100.0);
      }
      r.cpu_util = rng.normal_clamped(30.0, 10.0, 8.0, 60.0);
      break;
    }
    case Archetype::kLongFail: {
      r.user = rng.bernoulli(0.50) ? users.rare(rng)
                                   : users.draw(rng, 0.20, 0.80, 0.0001);
      r.gpu_model = pick_pool(rng, 0.30);
      r.num_gpus = 1;
      q.run_duration_s = std::max(14400.0, rng.lognormal(std::log(36000.0), 0.5));
      q.intended = rng.bernoulli(0.50) ? ExitStatus::kFailed
                                       : ExitStatus::kCompleted;
      q.abort_frac = rng.uniform(0.7, 0.98);  // fails deep into the run
      retry_policy(q.intended == ExitStatus::kFailed);
      // Starved input pipeline: decent mean, zero-utilization minutes.
      d.sm = UtilProfile(
          {Phase{1.0, rng.uniform(30.0, 60.0), 5.0, 900.0, 0.15, 0.0}}, 0.0,
          100.0);
      r.cpu_util = rng.normal_clamped(25.0, 8.0, 6.0, 50.0);
      break;
    }
    case Archetype::kCount:
      GPUMINE_ENSURE(false, "invalid archetype");
  }

  q.pool = r.gpu_model;
  q.num_gpus = r.num_gpus;
  return d;
}

}  // namespace

SynthTrace generate_philly(const PhillyConfig& config) {
  GPUMINE_CHECK_ARG(config.num_jobs > 0, "num_jobs must be positive");
  const double window_s = config.trace_days * 86400.0;
  Rng root(config.seed);

  const PrincipalPool users("u", 8, 150, 700);

  std::vector<DrawnJob> drawn;
  drawn.reserve(config.num_jobs);
  {
    Rng mix = root.fork(1);
    for (std::size_t i = 0; i < config.num_jobs; ++i) {
      const auto type = static_cast<Archetype>(mix.weighted_choice(kWeights));
      Rng job_rng = root.fork(1000 + i);
      drawn.push_back(draw_job(i, type, users, window_s, job_rng));
    }
  }

  sim::ClusterSim cluster({{GpuModel::kMem12GB, config.mem12_gpus},
                           {GpuModel::kMem24GB, config.mem24_gpus}});
  std::vector<sim::JobRequest> requests;
  requests.reserve(drawn.size());
  for (const DrawnJob& d : drawn) requests.push_back(d.request);
  const std::vector<sim::JobOutcome> outcomes =
      cluster.run(requests, {config.seed ^ 0xab1eu});

  SynthTrace out;
  auto& sched = out.scheduler;
  auto& job_id_s = sched.add_categorical("job_id");
  auto& user_c = sched.add_categorical("User");
  auto& gpus_c = sched.add_categorical("GPU Count");
  auto& gpu_mem_c = sched.add_categorical("GPU Mem");
  auto& attempts_c = sched.add_categorical("Num Attempts");
  auto& runtime_c = sched.add_numeric("Runtime");
  auto& status_c = sched.add_categorical("Status");

  auto& node = out.node;
  auto& job_id_n = node.add_categorical("job_id");
  auto& cpu_util_c = node.add_numeric("CPU Util");
  auto& sm_util_c = node.add_numeric("SM Util");
  auto& sm_min_c = node.add_numeric("Min SM Util");
  auto& sm_max_c = node.add_numeric("Max SM Util");

  const trace::MonitorConfig monitor{config.gpu_dt_s, config.max_samples};
  out.records.reserve(drawn.size());
  for (std::size_t i = 0; i < drawn.size(); ++i) {
    JobRecord r = drawn[i].record;
    const sim::JobOutcome& o = outcomes[i];
    r.queue_time_s = o.queue_time_s;
    r.runtime_s = o.runtime_s;
    r.status = o.status;
    r.num_attempts = o.attempts;

    Rng sm_rng = root.fork(2'000'000 + i);
    const auto sm_stats =
        trace::sample_profile(drawn[i].sm, r.runtime_s, monitor, sm_rng).stats();
    r.sm_util = std::round(sm_stats.mean);
    r.sm_util_min = std::round(sm_stats.min);
    r.sm_util_max = std::round(sm_stats.max);
    r.sm_util_var = sm_stats.variance;

    const std::string id = std::to_string(r.job_id);
    job_id_s.push(id);
    user_c.push(r.user);
    gpus_c.push(r.num_gpus > 1 ? "Multi-GPU" : "Single-GPU");
    gpu_mem_c.push(std::string(to_string(r.gpu_model)));
    attempts_c.push(r.num_attempts > 1 ? "Num Attempts > 1" : "Num Attempts = 1");
    runtime_c.push(r.runtime_s);
    status_c.push(r.status == ExitStatus::kCompleted ? "Passed"
                                                     : std::string(to_string(r.status)));

    job_id_n.push(id);
    cpu_util_c.push(r.cpu_util);
    sm_util_c.push(r.sm_util);
    sm_min_c.push(r.sm_util_min);
    sm_max_c.push(r.sm_util_max);

    out.records.push_back(std::move(r));
  }
  return out;
}

}  // namespace gpumine::synth
