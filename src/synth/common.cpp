#include "synth/common.hpp"

#include "common/ensure.hpp"
#include "prep/join.hpp"

namespace gpumine::synth {

prep::Table SynthTrace::merged() const {
  prep::Table out = prep::left_join(scheduler, node, "job_id");
  out.drop_column("job_id");
  return out;
}

PrincipalPool::PrincipalPool(std::string prefix, std::size_t num_heavy,
                             std::size_t num_regular, std::size_t num_rare)
    : prefix_(std::move(prefix)),
      num_heavy_(num_heavy),
      num_regular_(num_regular),
      num_rare_(num_rare) {
  GPUMINE_CHECK_ARG(num_heavy_ > 0 && num_regular_ > 0 && num_rare_ > 0,
                    "all principal classes need at least one member");
}

std::string PrincipalPool::heavy(trace::Rng& rng) const {
  return prefix_ + "h" + std::to_string(rng.uniform_int(0, num_heavy_ - 1));
}

std::string PrincipalPool::regular(trace::Rng& rng) const {
  // Mild skew inside the regular class (a few moderately active members)
  // keeps the count distribution realistic without a full Zipf fit.
  const double u = rng.uniform();
  const auto idx = static_cast<std::uint64_t>(
      u * u * static_cast<double>(num_regular_));
  return prefix_ + "r" +
         std::to_string(std::min<std::uint64_t>(idx, num_regular_ - 1));
}

std::string PrincipalPool::rare(trace::Rng& rng) const {
  return prefix_ + "n" + std::to_string(rng.uniform_int(0, num_rare_ - 1));
}

std::string PrincipalPool::draw(trace::Rng& rng, double w_heavy,
                                double w_regular, double w_rare) const {
  const double weights[] = {w_heavy, w_regular, w_rare};
  switch (rng.weighted_choice(weights)) {
    case 0:
      return heavy(rng);
    case 1:
      return regular(rng);
    default:
      return rare(rng);
  }
}

double zero_sm_fraction(const std::vector<trace::JobRecord>& records) {
  if (records.empty()) return 0.0;
  std::size_t zero = 0;
  for (const auto& r : records) {
    if (r.sm_util != trace::kUnset && r.sm_util < 0.5) ++zero;
  }
  return static_cast<double>(zero) / static_cast<double>(records.size());
}

double status_fraction(const std::vector<trace::JobRecord>& records,
                       trace::ExitStatus status) {
  if (records.empty()) return 0.0;
  std::size_t n = 0;
  for (const auto& r : records) {
    if (r.status == status) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(records.size());
}

}  // namespace gpumine::synth
