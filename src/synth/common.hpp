// Shared infrastructure for the synthetic trace generators.
//
// Each generator (pai.hpp / supercloud.hpp / philly.hpp) substitutes for
// a production trace we cannot ship (see DESIGN.md): it draws jobs from a
// mixture of workload archetypes calibrated against the marginal and
// conditional structure the paper documents, runs them through the
// discrete-event cluster simulator for queueing/retry dynamics, samples
// utilization profiles through the monitoring layer, and emits the same
// two-level table layout real traces have (scheduler-level + node-level,
// keyed by job id) so the preprocessing join path is exercised.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "prep/table.hpp"
#include "trace/job.hpp"
#include "trace/rng.hpp"

namespace gpumine::synth {

/// A generated trace: the two collection-level tables (to be merged with
/// prep::left_join on "job_id") plus the ground-truth records the tests
/// calibrate against.
struct SynthTrace {
  prep::Table scheduler;  // submission-time + outcome features
  prep::Table node;       // monitoring aggregates
  std::vector<trace::JobRecord> records;

  /// scheduler ⋈ node on job_id, with the key column dropped — the
  /// single mining table of Sec. III-E.
  [[nodiscard]] prep::Table merged() const;
};

/// Draws user (or job-group) identifiers with a controlled activity
/// skew: a small heavy set that ends up in the top-25%-share "frequent"
/// group, a broad regular set, and a long tail of rare principals that
/// ends up in the bottom-share "new/occasional" group.
class PrincipalPool {
 public:
  /// `prefix` distinguishes pools ("u" for users, "g" for groups).
  PrincipalPool(std::string prefix, std::size_t num_heavy,
                std::size_t num_regular, std::size_t num_rare);

  [[nodiscard]] std::string heavy(trace::Rng& rng) const;
  [[nodiscard]] std::string regular(trace::Rng& rng) const;
  [[nodiscard]] std::string rare(trace::Rng& rng) const;

  /// Draws by class weights (heavy/regular/rare).
  [[nodiscard]] std::string draw(trace::Rng& rng, double w_heavy,
                                 double w_regular, double w_rare) const;

 private:
  std::string prefix_;
  std::size_t num_heavy_;
  std::size_t num_regular_;
  std::size_t num_rare_;
};

/// Fraction of `records` with sm_util rounded-to-zero — the headline
/// statistic of Fig. 4 used by calibration tests.
[[nodiscard]] double zero_sm_fraction(const std::vector<trace::JobRecord>& records);

/// Fraction with a given exit status (Fig. 5).
[[nodiscard]] double status_fraction(const std::vector<trace::JobRecord>& records,
                                     trace::ExitStatus status);

}  // namespace gpumine::synth
