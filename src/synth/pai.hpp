// Synthetic Alibaba-PAI-like trace (paper Sec. II, Tables II / V / VIII).
//
// Substitutes for the proprietary 850k-task PAI trace. The archetype
// mixture is calibrated so the documented structure of the real trace is
// present for the miner to rediscover:
//   * ~46% of jobs with 0% mean SM utilization (Fig. 4), driven by
//     template/debug submissions from frequent users with unspecified
//     GPU type, standard CPU/memory requests and Tensorflow (Table II);
//   * the highest failure share of the three traces (Fig. 5), with
//     failure hot-spots on frequent users × frequent job groups and on
//     wide distributed jobs that never touch GPU memory (Table V);
//   * ~50% of jobs requesting the standard 600-core CPU count and a
//     standard memory request (the "Std" bins of Sec. IV-B);
//   * a T4 : non-T4 capacity ratio of ~1:3.5 with inverted queue
//     pressure — T4 under-demanded, P100/V100 congested (PAI1/PAI2);
//   * RecSys jobs on T4 with multiple task instances, NLP jobs with
//     zero CPU utilization but top-quartile SM utilization (PAI3/PAI4).
#pragma once

#include <cstdint>

#include "synth/common.hpp"

namespace gpumine::synth {

struct PaiConfig {
  std::size_t num_jobs = 80000;
  std::uint64_t seed = 42;
  /// Job arrival rate. The trace window is num_jobs / rate, so cluster
  /// load intensity — and with it the queue-pressure structure behind
  /// rules PAI1/PAI2 — is invariant to num_jobs. The default matches
  /// ~80k jobs over the paper's 2-month collection window.
  double arrival_rate_jobs_per_s = 0.0155;

  // GPU pool sizes; defaults keep T4:non-T4 near the paper's 1:3.5 with
  // the non-T4 pool congested and the T4 pool lightly loaded.
  int t4_gpus = 300;
  int non_t4_gpus = 1100;
  int misc_gpus = 700;  // pool for jobs with unspecified GPU type
};

[[nodiscard]] SynthTrace generate_pai(const PaiConfig& config = {});

}  // namespace gpumine::synth
