// Synthetic MIT-SuperCloud-like trace (paper Sec. II, Tables III / VI).
//
// Substitutes for the open MIT SuperCloud dataset (which we cannot bundle
// here). SuperCloud is homogeneous (2x V100 per node) and is the only
// trace with fine-grained nvidia-smi sampling (100 ms), so it carries the
// variance features ("SM Util Var", "GMem Util Var") plus GPU power and
// GPU memory-bandwidth utilization. The mixture is calibrated for:
//   * ~10% zero-SM jobs (Fig. 4) split between truly idle debug jobs
//     (variance ~0, nothing in GPU memory) and occasional-inference jobs
//     that keep memory occupied but round to 0% mean SM — the A1 vs A2
//     distinction of Table III;
//   * low GPU power / low GMem-bandwidth signatures for idle jobs
//     (Table III C1-C4), with new users over-represented (C3);
//   * a moderate failure share where ~40% of failures sit in the top
//     runtime quartile (Table VI A2: node failures / time limits);
//   * new users killing their own jobs (Table VIII CIR1).
#pragma once

#include <cstdint>

#include "synth/common.hpp"

namespace gpumine::synth {

struct SuperCloudConfig {
  std::size_t num_jobs = 50000;
  std::uint64_t seed = 43;
  double trace_days = 240.0;  // paper: 8 months

  int v100_gpus = 450;  // paper Table I

  /// nvidia-smi cadence (100 ms in the real collection) and the
  /// decimation budget per job (see trace::MonitorConfig).
  double gpu_dt_s = 0.1;
  std::size_t max_samples = 256;
};

[[nodiscard]] SynthTrace generate_supercloud(const SuperCloudConfig& config = {});

}  // namespace gpumine::synth
