// Synthetic Microsoft-Philly-like trace (paper Sec. II, Tables IV / VII).
//
// Substitutes for the Philly trace. Philly's Ganglia-based monitor
// records 1-minute averages, so the per-minute minimum and maximum SM
// utilization become job features alongside the mean ("Min SM Util =
// 0%"); the platform auto-retries failed jobs ("Num Attempts > 1"); and
// nodes carry 12 GB or 24 GB GPUs. The mixture is calibrated for:
//   * ~35% of jobs with 0% mean SM utilization (Fig. 4), short and
//     CPU-idle (Table IV C1/C2);
//   * ~14% multi-GPU jobs that fail ~2.5x more often than baseline and
//     run long (Table VII C1, Table VIII PHI1) — gang failure semantics;
//   * new users ~2.5x more failure-prone (Table VII C2);
//   * failed jobs with zero min-SM intervals that were retried at least
//     once, and a family of long-running late failures (Table VII A1/A2).
#pragma once

#include <cstdint>

#include "synth/common.hpp"

namespace gpumine::synth {

struct PhillyConfig {
  std::size_t num_jobs = 50000;
  std::uint64_t seed = 44;
  double trace_days = 75.0;  // paper Table I

  int mem12_gpus = 1700;
  int mem24_gpus = 800;

  /// Ganglia cadence (1 minute in the real collection).
  double gpu_dt_s = 60.0;
  std::size_t max_samples = 256;
};

[[nodiscard]] SynthTrace generate_philly(const PhillyConfig& config = {});

}  // namespace gpumine::synth
