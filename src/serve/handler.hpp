// RequestHandler: protocol-independent request routing for the rule
// server.
//
// The socket layer (serve/server.hpp) and the in-process bench
// (bench/perf_serve.cpp) both drive this one entry point, so the
// serving logic is testable — and benchmarkable — without a network.
//
// Endpoints (HTTP targets; the line protocol maps onto the same ones):
//   GET  /query?keyword=NAME    pre-rendered rule JSON for the keyword
//   GET  /support?items=A,B     support probe over the itemset family
//   GET  /stats                 server metrics + snapshot shape
//   GET  /metrics               Prometheus text exposition format 0.0.4
//   POST /reload                re-read the snapshot file, atomic swap
//   GET  /healthz               liveness probe
//
// Keyword and item names arrive percent-encoded ("SM%20Util%20%3D%200%25");
// '+' is accepted for space. Every request is timed into ServerMetrics
// under its endpoint. Responses for /query are the engine's cached
// bytes — byte-identical across threads, reloads of identical
// snapshots, and the one-shot CLI pipeline.
//
// Slow-query log: with set_slow_query_ns(t) and flight recording on,
// any request slower than t gets a structured warn line carrying the
// request's own span subtree pulled from the FlightRecorder ring —
// post-hoc context for exactly the requests that need explaining.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "common/result.hpp"
#include "serve/engine_handle.hpp"
#include "serve/metrics.hpp"
#include "serve/query_engine.hpp"

namespace gpumine::serve {

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

/// Decodes %XX escapes and '+' as space; malformed escapes are kept
/// verbatim (a keyword lookup will simply miss).
[[nodiscard]] std::string url_decode(std::string_view text);

class RequestHandler {
 public:
  /// `snapshot_path` is re-read on every /reload; it may be empty for
  /// handlers built from an in-memory snapshot (reload then fails with
  /// a 500 and no engine change).
  RequestHandler(std::shared_ptr<const QueryEngine> engine,
                 std::string snapshot_path);

  /// Routes one request. `target` is the HTTP request target
  /// ("/query?keyword=Failed"); `method` is "GET"/"POST"/...
  [[nodiscard]] HttpResponse handle(std::string_view method,
                                    std::string_view target);

  /// Maps one line-protocol command ("QUERY Failed", "SUPPORT a,b",
  /// "STATS", "RELOAD", "HEALTH") onto the HTTP endpoint; names after
  /// the verb are taken verbatim (no percent-encoding on this path).
  [[nodiscard]] HttpResponse handle_line(std::string_view line);

  /// Re-reads the snapshot file, builds a fresh engine, and publishes
  /// it. Readers in flight keep the old engine until they drop it.
  [[nodiscard]] Result<bool> reload();

  /// Current engine (shared across reloads).
  [[nodiscard]] std::shared_ptr<const QueryEngine> engine() const {
    return handle_.get();
  }

  [[nodiscard]] ServerMetrics& metrics() { return metrics_; }
  [[nodiscard]] const std::string& snapshot_path() const {
    return snapshot_path_;
  }

  /// Requests slower than `nanos` get a structured slow-query log line
  /// (0 disables, the default). Set before serving starts.
  void set_slow_query_ns(std::uint64_t nanos) { slow_query_ns_ = nanos; }
  [[nodiscard]] std::uint64_t slow_query_ns() const { return slow_query_ns_; }

 private:
  HttpResponse route(std::string_view method, std::string_view target);
  void log_slow_query(std::string_view method, std::string_view target,
                      int status, std::uint64_t nanos,
                      std::uint64_t trace_start_ns);

  EngineHandle<QueryEngine> handle_;
  std::string snapshot_path_;
  ServerMetrics metrics_;
  std::uint64_t slow_query_ns_ = 0;
};

}  // namespace gpumine::serve
