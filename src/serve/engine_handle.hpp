// EngineHandle: lock-free publication point for snapshot hot-reload.
//
// The server's reader threads fetch the current QueryEngine through a
// shared_ptr; a reload builds a complete replacement engine off to the
// side and publishes it with one atomic pointer swap. Readers holding
// the old engine keep a valid reference until their last shared_ptr
// drops — no reader ever blocks on a reload, and no reload waits for
// readers (RCU-style grace via shared_ptr refcounts).
//
// Implementation: std::atomic<std::shared_ptr<T>> where the standard
// library provides it (libstdc++ 12+, __cpp_lib_atomic_shared_ptr);
// otherwise a shared_mutex guarding only the pointer copy — the
// fallback's critical section is a refcount increment, never a query.
#pragma once

#include <memory>
#include <version>

#if defined(__cpp_lib_atomic_shared_ptr)
#include <atomic>
#else
#include <mutex>
#include <shared_mutex>
#endif

namespace gpumine::serve {

template <typename Engine>
class EngineHandle {
 public:
  EngineHandle() = default;
  explicit EngineHandle(std::shared_ptr<const Engine> engine) {
    publish(std::move(engine));
  }

  EngineHandle(const EngineHandle&) = delete;
  EngineHandle& operator=(const EngineHandle&) = delete;

  /// Current engine; never nullptr once publish() has run. The returned
  /// shared_ptr keeps the engine alive across a concurrent reload.
  [[nodiscard]] std::shared_ptr<const Engine> get() const {
#if defined(__cpp_lib_atomic_shared_ptr)
    return engine_.load(std::memory_order_acquire);
#else
    std::shared_lock lock(mutex_);
    return engine_;
#endif
  }

  /// Atomically replaces the engine. The old engine dies when the last
  /// in-flight reader releases it.
  void publish(std::shared_ptr<const Engine> engine) {
#if defined(__cpp_lib_atomic_shared_ptr)
    engine_.store(std::move(engine), std::memory_order_release);
#else
    std::unique_lock lock(mutex_);
    engine_ = std::move(engine);
#endif
  }

 private:
#if defined(__cpp_lib_atomic_shared_ptr)
  std::atomic<std::shared_ptr<const Engine>> engine_;
#else
  mutable std::shared_mutex mutex_;
  std::shared_ptr<const Engine> engine_;
#endif
};

}  // namespace gpumine::serve
