#include "serve/query_engine.hpp"

#include <utility>

#include "analysis/export.hpp"
#include "core/pruning.hpp"

namespace gpumine::serve {

QueryEngine::QueryEngine(core::RuleSnapshot snapshot)
    : snapshot_(std::move(snapshot)), index_(snapshot_.result) {
  // Per-keyword precompute, mirroring the keyword half of
  // core::analyze_keyword over the shared pre-generated rule list. The
  // rendered JSON is cached so the serving path never touches the rule
  // vectors.
  by_keyword_.reserve(snapshot_.catalog.size());
  for (core::ItemId id = 0; id < snapshot_.catalog.size(); ++id) {
    Entry entry;
    entry.analysis.keyword = id;
    const std::vector<core::Rule> keyed =
        core::filter_keyword(snapshot_.rules, id);
    const std::vector<core::Rule> pruned = core::prune_rules(
        keyed, id, snapshot_.prune_params, &entry.analysis.prune_stats);
    entry.analysis.cause = core::filter_keyword(
        pruned, id, core::KeywordSide::kConsequent);
    entry.analysis.characteristic = core::filter_keyword(
        pruned, id, core::KeywordSide::kAntecedent);
    entry.analysis.stage.rules_generated = snapshot_.rules.size();
    entry.analysis.stage.rules_kept = entry.analysis.prune_stats.kept;
    for (std::size_t c = 0; c < 4; ++c) {
      entry.analysis.stage.pruned_by_condition[c] =
          entry.analysis.prune_stats.pruned_by[c];
    }
    entry.json = analysis::rules_to_json(entry.analysis, snapshot_.catalog);
    if (!pruned.empty()) ++keywords_with_rules_;
    by_keyword_.emplace(snapshot_.catalog.name(id), std::move(entry));
  }
}

const core::KeywordAnalysis* QueryEngine::query(
    std::string_view keyword) const {
  const auto it = by_keyword_.find(std::string(keyword));
  return it == by_keyword_.end() ? nullptr : &it->second.analysis;
}

const std::string* QueryEngine::query_json(std::string_view keyword) const {
  const auto it = by_keyword_.find(std::string(keyword));
  return it == by_keyword_.end() ? nullptr : &it->second.json;
}

std::optional<std::uint64_t> QueryEngine::support_count(
    const std::vector<std::string>& item_names) const {
  core::Itemset items;
  items.reserve(item_names.size());
  for (const std::string& name : item_names) {
    const auto id = snapshot_.catalog.find(name);
    if (!id) return std::nullopt;
    items.push_back(*id);
  }
  core::canonicalize(items);
  return index_.find(items);
}

std::vector<std::string> QueryEngine::keyword_names() const {
  std::vector<std::string> names;
  names.reserve(snapshot_.catalog.size());
  for (core::ItemId id = 0; id < snapshot_.catalog.size(); ++id) {
    names.push_back(snapshot_.catalog.name(id));
  }
  return names;
}

}  // namespace gpumine::serve
