// Prometheus adapter for the rule server: renders a ServerMetrics
// snapshot plus the loaded snapshot's shape as text exposition format
// 0.0.4 (the GET /metrics payload).
//
// A fresh common::MetricsRegistry is built per scrape from the lock-free
// ServerMetrics counters, so the serving hot path never pays for label
// lookups — and the exported series *set* is a pure function of the
// compiled-in endpoint and bucket layout, hence byte-identical across
// worker-thread counts (the bench asserts this).
#pragma once

#include <cstdint>
#include <string>

#include "serve/metrics.hpp"

namespace gpumine::serve {

/// Shape of the currently loaded rule snapshot, exported as gauges.
struct SnapshotShape {
  std::uint64_t db_size = 0;
  std::uint64_t items = 0;
  std::uint64_t itemsets = 0;
  std::uint64_t rules = 0;
  std::uint64_t keywords_with_rules = 0;
};

/// The /metrics response body.
[[nodiscard]] std::string render_prometheus(const MetricsSnapshot& metrics,
                                            const SnapshotShape& shape);

/// Content type for the /metrics response.
inline constexpr const char* kPrometheusContentType =
    "text/plain; version=0.0.4; charset=utf-8";

}  // namespace gpumine::serve
