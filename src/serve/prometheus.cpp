#include "serve/prometheus.hpp"

#include <vector>

#include "common/metrics.hpp"

namespace gpumine::serve {
namespace {

/// Prometheus `le` bounds (seconds) matching LatencyHistogram's log2
/// nanosecond buckets: bucket i counts latencies with bit_width == i,
/// upper bound 2^i - 1 ns. The saturating top bucket becomes +Inf.
std::vector<double> latency_bounds_seconds() {
  std::vector<double> bounds;
  bounds.reserve(LatencyHistogram::kBuckets - 1);
  for (std::size_t i = 0; i + 1 < LatencyHistogram::kBuckets; ++i) {
    const std::uint64_t ub_ns = i == 0 ? 0 : (std::uint64_t{1} << i) - 1;
    bounds.push_back(static_cast<double>(ub_ns) / 1e9);
  }
  return bounds;
}

}  // namespace

std::string render_prometheus(const MetricsSnapshot& metrics,
                              const SnapshotShape& shape) {
  MetricsRegistry registry;

  registry
      .gauge("gpumine_server_uptime_seconds",
             "Seconds since the server started")
      .set(metrics.uptime_seconds);

  const std::vector<double> bounds = latency_bounds_seconds();
  for (const EndpointSnapshot& e : metrics.endpoints) {
    registry
        .counter("gpumine_server_requests_total",
                 "Requests handled, by endpoint", {{"endpoint", e.name}})
        .add(e.requests);
    registry
        .counter("gpumine_server_errors_total",
                 "Non-2xx responses, by endpoint", {{"endpoint", e.name}})
        .add(e.errors);
    Histogram& latency = registry.histogram(
        "gpumine_server_request_latency_seconds",
        "Request wall time, by endpoint", bounds, {{"endpoint", e.name}});
    for (std::size_t b = 0; b < e.bucket_counts.size(); ++b) {
      if (e.bucket_counts[b] != 0) {
        latency.merge_bucket(b, e.bucket_counts[b], 0.0);
      }
    }
    // The histogram tracks the exact sum separately from the log2
    // buckets; fold it in without touching any count.
    latency.merge_bucket(0, 0, static_cast<double>(e.sum_ns) / 1e9);
  }

  registry
      .counter("gpumine_server_reloads_total",
               "Snapshot reload attempts, by result", {{"result", "ok"}})
      .add(metrics.reloads - metrics.reload_failures);
  registry
      .counter("gpumine_server_reloads_total",
               "Snapshot reload attempts, by result", {{"result", "error"}})
      .add(metrics.reload_failures);

  registry
      .gauge("gpumine_snapshot_db_size",
             "Transactions in the loaded rule snapshot")
      .set(static_cast<double>(shape.db_size));
  registry
      .gauge("gpumine_snapshot_items", "Items in the loaded rule snapshot")
      .set(static_cast<double>(shape.items));
  registry
      .gauge("gpumine_snapshot_itemsets",
             "Frequent itemsets in the loaded rule snapshot")
      .set(static_cast<double>(shape.itemsets));
  registry
      .gauge("gpumine_snapshot_rules", "Rules in the loaded rule snapshot")
      .set(static_cast<double>(shape.rules));
  registry
      .gauge("gpumine_snapshot_keywords_with_rules",
             "Keywords with at least one rule in the loaded snapshot")
      .set(static_cast<double>(shape.keywords_with_rules));

  return registry.render_prometheus();
}

}  // namespace gpumine::serve
