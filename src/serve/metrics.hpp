// Server-side observability: per-endpoint request counters and latency
// histograms, cheap enough to update on every request from any thread.
//
// Latencies land in a fixed array of power-of-two nanosecond buckets
// (bucket i counts latencies with bit_width(ns) == i, i.e. the range
// [2^(i-1), 2^i)), each an independent relaxed atomic — recording is a
// clock read plus one fetch_add, with no locks on the serving path.
// Percentiles are read back as the upper bound of the bucket holding
// the requested rank: an estimate within 2x of the true latency, which
// is what a tail-latency gate needs (the bench asserts against these).
//
// ServerMetrics aggregates one histogram per endpoint plus error and
// reload counters; snapshot() returns a consistent-enough copy for
// /stats (individual counters are exact, cross-counter skew is bounded
// by in-flight requests).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace gpumine::serve {

/// Lock-free log2-bucket latency histogram (nanoseconds). Alongside the
/// bucket counts it tracks the exact sum, min and max, so /metrics can
/// export a true Prometheus `_sum` and /stats can report the real mean
/// rather than a 2x-quantized estimate.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 48;  // up to ~78 hours

  void record(std::uint64_t nanos) {
    std::size_t bucket = std::bit_width(nanos);
    if (bucket >= kBuckets) bucket = kBuckets - 1;
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(nanos, std::memory_order_relaxed);
    update_min(nanos);
    update_max(nanos);
  }

  [[nodiscard]] std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (const auto& b : buckets_) sum += b.load(std::memory_order_relaxed);
    return sum;
  }

  /// Exact sum of all recorded latencies, in nanoseconds.
  [[nodiscard]] std::uint64_t sum_ns() const {
    return sum_.load(std::memory_order_relaxed);
  }
  /// Exact smallest recorded latency; 0 when nothing has been recorded.
  [[nodiscard]] std::uint64_t min_ns() const {
    const std::uint64_t v = min_.load(std::memory_order_relaxed);
    return v == kNoMin ? 0 : v;
  }
  /// Exact largest recorded latency; 0 when nothing has been recorded.
  [[nodiscard]] std::uint64_t max_ns() const {
    return max_.load(std::memory_order_relaxed);
  }

  /// Raw (non-cumulative) count of bucket `i` — the /metrics exporter
  /// re-buckets these into Prometheus cumulative `le` buckets.
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Upper bound (in nanoseconds) of the bucket holding the p-quantile
  /// observation, p in [0, 1]. 0 when nothing has been recorded.
  [[nodiscard]] std::uint64_t percentile_ns(double p) const;

 private:
  static constexpr std::uint64_t kNoMin = ~std::uint64_t{0};

  void update_min(std::uint64_t nanos) {
    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (nanos < cur && !min_.compare_exchange_weak(
                              cur, nanos, std::memory_order_relaxed,
                              std::memory_order_relaxed)) {
    }
  }
  void update_max(std::uint64_t nanos) {
    std::uint64_t cur = max_.load(std::memory_order_relaxed);
    while (nanos > cur && !max_.compare_exchange_weak(
                              cur, nanos, std::memory_order_relaxed,
                              std::memory_order_relaxed)) {
    }
  }

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{kNoMin};
  std::atomic<std::uint64_t> max_{0};
};

/// The endpoints the handler distinguishes. Liveness probes (kHealth)
/// and scrapes (kMetrics) get their own buckets so cheap machine-driven
/// traffic does not skew kOther's latency percentiles or error counts.
enum class Endpoint : std::size_t {
  kQuery = 0,
  kSupport,
  kStats,
  kReload,
  kHealth,
  kMetrics,
  kOther,
};
inline constexpr std::size_t kNumEndpoints = 7;

[[nodiscard]] const char* endpoint_name(Endpoint endpoint);

/// Point-in-time copy of one endpoint's counters.
struct EndpointSnapshot {
  std::string name;
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;  // non-2xx responses
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  // Exact (not bucket-quantized) latency aggregates.
  double mean_us = 0.0;
  double min_us = 0.0;
  double max_us = 0.0;
  std::uint64_t sum_ns = 0;
  // Raw per-bucket counts (LatencyHistogram layout), consumed by the
  // Prometheus exporter; not part of the /stats JSON.
  std::vector<std::uint64_t> bucket_counts;
};

struct MetricsSnapshot {
  std::vector<EndpointSnapshot> endpoints;
  std::uint64_t total_requests = 0;
  std::uint64_t reloads = 0;
  std::uint64_t reload_failures = 0;
  double uptime_seconds = 0.0;
  double qps = 0.0;  // total_requests / uptime

  /// Single-line JSON object (the /stats payload embeds it).
  [[nodiscard]] std::string to_json() const;
};

class ServerMetrics {
 public:
  ServerMetrics() : start_(std::chrono::steady_clock::now()) {}

  /// Records one finished request: endpoint, HTTP status, wall time.
  void record(Endpoint endpoint, int status, std::uint64_t nanos);

  void record_reload(bool ok);

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  struct PerEndpoint {
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> errors{0};
    LatencyHistogram latency;
  };

  std::chrono::steady_clock::time_point start_;
  std::array<PerEndpoint, kNumEndpoints> endpoints_{};
  std::atomic<std::uint64_t> reloads_{0};
  std::atomic<std::uint64_t> reload_failures_{0};
};

}  // namespace gpumine::serve
