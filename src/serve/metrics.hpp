// Server-side observability: per-endpoint request counters and latency
// histograms, cheap enough to update on every request from any thread.
//
// Latencies land in a fixed array of power-of-two nanosecond buckets
// (bucket i counts latencies with bit_width(ns) == i, i.e. the range
// [2^(i-1), 2^i)), each an independent relaxed atomic — recording is a
// clock read plus one fetch_add, with no locks on the serving path.
// Percentiles are read back as the upper bound of the bucket holding
// the requested rank: an estimate within 2x of the true latency, which
// is what a tail-latency gate needs (the bench asserts against these).
//
// ServerMetrics aggregates one histogram per endpoint plus error and
// reload counters; snapshot() returns a consistent-enough copy for
// /stats (individual counters are exact, cross-counter skew is bounded
// by in-flight requests).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace gpumine::serve {

/// Lock-free log2-bucket latency histogram (nanoseconds).
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 48;  // up to ~78 hours

  void record(std::uint64_t nanos) {
    std::size_t bucket = std::bit_width(nanos);
    if (bucket >= kBuckets) bucket = kBuckets - 1;
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (const auto& b : buckets_) sum += b.load(std::memory_order_relaxed);
    return sum;
  }

  /// Upper bound (in nanoseconds) of the bucket holding the p-quantile
  /// observation, p in [0, 1]. 0 when nothing has been recorded.
  [[nodiscard]] std::uint64_t percentile_ns(double p) const;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// The endpoints the handler distinguishes.
enum class Endpoint : std::size_t {
  kQuery = 0,
  kSupport,
  kStats,
  kReload,
  kOther,
};
inline constexpr std::size_t kNumEndpoints = 5;

[[nodiscard]] const char* endpoint_name(Endpoint endpoint);

/// Point-in-time copy of one endpoint's counters.
struct EndpointSnapshot {
  std::string name;
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;  // non-2xx responses
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
};

struct MetricsSnapshot {
  std::vector<EndpointSnapshot> endpoints;
  std::uint64_t total_requests = 0;
  std::uint64_t reloads = 0;
  std::uint64_t reload_failures = 0;
  double uptime_seconds = 0.0;
  double qps = 0.0;  // total_requests / uptime

  /// Single-line JSON object (the /stats payload embeds it).
  [[nodiscard]] std::string to_json() const;
};

class ServerMetrics {
 public:
  ServerMetrics() : start_(std::chrono::steady_clock::now()) {}

  /// Records one finished request: endpoint, HTTP status, wall time.
  void record(Endpoint endpoint, int status, std::uint64_t nanos);

  void record_reload(bool ok);

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  struct PerEndpoint {
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> errors{0};
    LatencyHistogram latency;
  };

  std::chrono::steady_clock::time_point start_;
  std::array<PerEndpoint, kNumEndpoints> endpoints_{};
  std::atomic<std::uint64_t> reloads_{0};
  std::atomic<std::uint64_t> reload_failures_{0};
};

}  // namespace gpumine::serve
