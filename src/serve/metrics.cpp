#include "serve/metrics.hpp"

#include <cmath>
#include <cstdio>

namespace gpumine::serve {
namespace {

double to_us(std::uint64_t nanos) {
  return static_cast<double>(nanos) * 1e-3;
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::uint64_t LatencyHistogram::percentile_ns(double p) const {
  std::array<std::uint64_t, kBuckets> counts;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // Rank of the requested observation, 1-based; ceil keeps p=0.5 of a
  // 2-element histogram on the first element.
  auto rank = static_cast<std::uint64_t>(
      std::ceil(p * static_cast<double>(total)));
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += counts[i];
    if (seen >= rank) {
      // Bucket i holds values with bit_width == i: upper bound 2^i - 1.
      return i == 0 ? 0 : (std::uint64_t{1} << i) - 1;
    }
  }
  return (std::uint64_t{1} << (kBuckets - 1)) - 1;
}

const char* endpoint_name(Endpoint endpoint) {
  switch (endpoint) {
    case Endpoint::kQuery:
      return "query";
    case Endpoint::kSupport:
      return "support";
    case Endpoint::kStats:
      return "stats";
    case Endpoint::kReload:
      return "reload";
    case Endpoint::kHealth:
      return "health";
    case Endpoint::kMetrics:
      return "metrics";
    case Endpoint::kOther:
      return "other";
  }
  return "unknown";
}

void ServerMetrics::record(Endpoint endpoint, int status,
                           std::uint64_t nanos) {
  PerEndpoint& e = endpoints_[static_cast<std::size_t>(endpoint)];
  e.requests.fetch_add(1, std::memory_order_relaxed);
  if (status < 200 || status >= 300) {
    e.errors.fetch_add(1, std::memory_order_relaxed);
  }
  e.latency.record(nanos);
}

void ServerMetrics::record_reload(bool ok) {
  reloads_.fetch_add(1, std::memory_order_relaxed);
  if (!ok) reload_failures_.fetch_add(1, std::memory_order_relaxed);
}

MetricsSnapshot ServerMetrics::snapshot() const {
  MetricsSnapshot out;
  out.uptime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  for (std::size_t i = 0; i < kNumEndpoints; ++i) {
    const PerEndpoint& e = endpoints_[i];
    EndpointSnapshot s;
    s.name = endpoint_name(static_cast<Endpoint>(i));
    s.requests = e.requests.load(std::memory_order_relaxed);
    s.errors = e.errors.load(std::memory_order_relaxed);
    s.p50_us = to_us(e.latency.percentile_ns(0.50));
    s.p95_us = to_us(e.latency.percentile_ns(0.95));
    s.p99_us = to_us(e.latency.percentile_ns(0.99));
    s.sum_ns = e.latency.sum_ns();
    const std::uint64_t observed = e.latency.total();
    s.mean_us = observed == 0 ? 0.0
                              : to_us(s.sum_ns) /
                                    static_cast<double>(observed);
    s.min_us = to_us(e.latency.min_ns());
    s.max_us = to_us(e.latency.max_ns());
    s.bucket_counts.resize(LatencyHistogram::kBuckets);
    for (std::size_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
      s.bucket_counts[b] = e.latency.bucket_count(b);
    }
    out.total_requests += s.requests;
    out.endpoints.push_back(std::move(s));
  }
  out.reloads = reloads_.load(std::memory_order_relaxed);
  out.reload_failures = reload_failures_.load(std::memory_order_relaxed);
  out.qps = out.uptime_seconds > 0.0
                ? static_cast<double>(out.total_requests) / out.uptime_seconds
                : 0.0;
  return out;
}

std::string MetricsSnapshot::to_json() const {
  std::string json = "{\"uptime_seconds\":" + fmt(uptime_seconds);
  json += ",\"total_requests\":" + std::to_string(total_requests);
  json += ",\"qps\":" + fmt(qps);
  json += ",\"reloads\":" + std::to_string(reloads);
  json += ",\"reload_failures\":" + std::to_string(reload_failures);
  json += ",\"endpoints\":[";
  for (std::size_t i = 0; i < endpoints.size(); ++i) {
    if (i > 0) json += ',';
    const EndpointSnapshot& e = endpoints[i];
    json += "{\"name\":\"" + e.name + "\"";
    json += ",\"requests\":" + std::to_string(e.requests);
    json += ",\"errors\":" + std::to_string(e.errors);
    json += ",\"p50_us\":" + fmt(e.p50_us);
    json += ",\"p95_us\":" + fmt(e.p95_us);
    json += ",\"p99_us\":" + fmt(e.p99_us);
    json += ",\"mean_us\":" + fmt(e.mean_us);
    json += ",\"min_us\":" + fmt(e.min_us);
    json += ",\"max_us\":" + fmt(e.max_us);
    json += '}';
  }
  json += "]}";
  return json;
}

}  // namespace gpumine::serve
