#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string_view>
#include <utility>

#include "common/log.hpp"

namespace gpumine::serve {
namespace {

std::string errno_text() { return std::strerror(errno); }

const char* reason_phrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 500:
      return "Internal Server Error";
    default:
      return "Status";
  }
}

/// Writes the whole buffer, retrying on short writes and EINTR.
bool send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t sent = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(sent));
  }
  return true;
}

bool send_http_response(int fd, const HttpResponse& response) {
  std::string head = "HTTP/1.1 " + std::to_string(response.status) + ' ' +
                     reason_phrase(response.status) + "\r\n";
  head += "Content-Type: " + response.content_type + "\r\n";
  head += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  head += "Connection: close\r\n\r\n";
  return send_all(fd, head) && send_all(fd, response.body);
}

/// "GET /query?k=v HTTP/1.1" -> {method, target}; false when malformed.
bool parse_request_line(std::string_view line, std::string_view* method,
                        std::string_view* target) {
  const std::size_t first = line.find(' ');
  if (first == std::string_view::npos) return false;
  const std::size_t second = line.find(' ', first + 1);
  if (second == std::string_view::npos) return false;
  *method = line.substr(0, first);
  *target = line.substr(first + 1, second - first - 1);
  return !method->empty() && !target->empty();
}

void close_fd(int fd) { ::close(fd); }

}  // namespace

Server::Server(RequestHandler& handler, ServerConfig config)
    : handler_(handler), config_(std::move(config)) {}

Server::~Server() { stop(); }

Result<bool> Server::start() {
  if (running_.load(std::memory_order_acquire)) {
    return Error{"serve", "server already running"};
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Error{"serve", "socket: " + errno_text()};
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    close_fd(listen_fd_);
    listen_fd_ = -1;
    return Error{"serve", "bad listen address '" + config_.host + "'"};
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string text = errno_text();
    close_fd(listen_fd_);
    listen_fd_ = -1;
    return Error{"serve", "bind " + config_.host + ':' +
                              std::to_string(config_.port) + ": " + text};
  }
  if (::listen(listen_fd_, 128) != 0) {
    const std::string text = errno_text();
    close_fd(listen_fd_);
    listen_fd_ = -1;
    return Error{"serve", "listen: " + text};
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = config_.port;
  }

  pool_ = std::make_unique<ThreadPool>(
      config_.num_threads == 0 ? 1 : config_.num_threads);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
  log_info("serve", "listening",
           {{"host", config_.host},
            {"port", static_cast<std::uint64_t>(port_)},
            {"threads",
             static_cast<std::uint64_t>(config_.num_threads == 0
                                            ? 1
                                            : config_.num_threads)}});
  return true;
}

void Server::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    // Never started (or already stopped); still release a bound fd.
    if (listen_fd_ >= 0) {
      close_fd(listen_fd_);
      listen_fd_ = -1;
    }
    return;
  }
  // Unblock accept() and refuse new connections. The -1 store waits
  // until the accept thread is joined — it still reads listen_fd_, and
  // an early write here races with that read (close alone is enough to
  // make its accept() fail and the loop observe running_ == false).
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    close_fd(listen_fd_);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  listen_fd_ = -1;
  // Unblock workers parked in recv() on persistent line sessions.
  {
    std::lock_guard lock(connections_mutex_);
    for (const int fd : connections_) ::shutdown(fd, SHUT_RDWR);
  }
  // Drains queued connections and joins the workers.
  pool_.reset();
  log_info("serve", "stopped");
}

void Server::accept_loop() {
  while (running_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Listener closed by stop(), or a transient accept failure after
      // the client already gave up — either way, re-check running_.
      if (!running_.load(std::memory_order_acquire)) break;
      log_debug("serve", "accept failed", {{"error", errno_text()}});
      continue;
    }
    {
      std::lock_guard lock(connections_mutex_);
      connections_.insert(fd);
    }
    pool_->submit([this, fd] { serve_connection(fd); });
  }
}

void Server::serve_connection(int fd) {
  // Safety net against dead clients holding a worker; stop() unblocks
  // live sessions explicitly via shutdown().
  timeval timeout{};
  timeout.tv_sec = 60;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

  std::string buffer;
  char chunk[4096];
  bool first_line = true;
  std::size_t consumed = 0;

  // A connection speaks HTTP iff its FIRST line is a request line;
  // otherwise every received line is a QUERY/SUPPORT/... command.
  while (running_.load(std::memory_order_acquire)) {
    const std::size_t newline = buffer.find('\n', consumed);
    if (newline == std::string::npos) {
      const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
      if (got <= 0) break;  // EOF, timeout, or shutdown
      buffer.append(chunk, static_cast<std::size_t>(got));
      continue;
    }
    std::string_view line(buffer.data() + consumed, newline - consumed);
    consumed = newline + 1;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);

    const bool http =
        first_line && line.find(" HTTP/") != std::string_view::npos;
    first_line = false;

    if (http) {
      std::string_view method;
      std::string_view target;
      if (!parse_request_line(line, &method, &target)) {
        log_debug("serve", "malformed request line",
                  {{"line", std::string_view(line.data(),
                                             std::min<std::size_t>(
                                                 line.size(), 128))}});
        send_http_response(
            fd, {400, "application/json", "{\"error\":\"bad request\"}"});
        break;
      }
      // Drain headers (blank line terminates; bodies are not used by
      // any endpoint, so the connection closes after the response).
      for (;;) {
        const std::size_t next = buffer.find('\n', consumed);
        if (next == std::string::npos) {
          const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
          if (got <= 0) break;
          buffer.append(chunk, static_cast<std::size_t>(got));
          continue;
        }
        std::string_view header(buffer.data() + consumed, next - consumed);
        consumed = next + 1;
        if (!header.empty() && header.back() == '\r') {
          header.remove_suffix(1);
        }
        if (header.empty()) break;
      }
      send_http_response(fd, handler_.handle(method, target));
      break;
    }

    if (line == "QUIT") break;
    if (line.empty()) continue;
    const HttpResponse response = handler_.handle_line(line);
    if (!send_all(fd, response.body)) break;
    if (response.body.empty() || response.body.back() != '\n') {
      if (!send_all(fd, "\n")) break;
    }
  }

  {
    std::lock_guard lock(connections_mutex_);
    connections_.erase(fd);
  }
  close_fd(fd);
}

Result<HttpResponse> http_request(const std::string& host, std::uint16_t port,
                                  const std::string& method,
                                  const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Error{"http", "socket: " + errno_text()};

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close_fd(fd);
    return Error{"http", "bad address '" + host + "'"};
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string text = errno_text();
    close_fd(fd);
    return Error{"http", "connect " + host + ':' + std::to_string(port) +
                             ": " + text};
  }

  const std::string request = method + ' ' + target + " HTTP/1.1\r\nHost: " +
                              host + "\r\nConnection: close\r\n\r\n";
  if (!send_all(fd, request)) {
    const std::string text = errno_text();
    close_fd(fd);
    return Error{"http", "send: " + text};
  }

  std::string raw;
  char chunk[4096];
  for (;;) {
    const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) break;
    raw.append(chunk, static_cast<std::size_t>(got));
  }
  close_fd(fd);

  const std::size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Error{"http", "malformed response (no header terminator)"};
  }
  const std::size_t status_begin = raw.find(' ');
  if (status_begin == std::string::npos || status_begin > header_end) {
    return Error{"http", "malformed status line"};
  }
  HttpResponse response;
  response.status = std::atoi(raw.c_str() + status_begin + 1);
  const std::string_view headers(raw.data(), header_end);
  const std::size_t type_at = headers.find("Content-Type: ");
  if (type_at != std::string_view::npos) {
    const std::size_t type_end = headers.find("\r\n", type_at);
    const std::size_t value_at = type_at + 14;
    response.content_type = std::string(
        headers.substr(value_at, (type_end == std::string_view::npos
                                      ? headers.size()
                                      : type_end) -
                                     value_at));
  }
  response.body = raw.substr(header_end + 4);
  return response;
}

}  // namespace gpumine::serve
