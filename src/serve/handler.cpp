#include "serve/handler.hpp"

#include <chrono>
#include <cstdio>
#include <utility>
#include <vector>

#include "analysis/export.hpp"
#include "common/flight.hpp"
#include "common/log.hpp"
#include "common/trace.hpp"
#include "core/snapshot.hpp"
#include "serve/prometheus.hpp"

namespace gpumine::serve {
namespace {

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

HttpResponse error_response(int status, const std::string& message) {
  return {status, "application/json",
          "{\"error\":\"" + analysis::json_escape(message) + "\"}"};
}

/// Value of `name` in a query string ("a=1&b=2"), percent-decoded;
/// nullopt when absent.
std::optional<std::string> query_param(std::string_view query,
                                       std::string_view name) {
  while (!query.empty()) {
    const std::size_t amp = query.find('&');
    const std::string_view pair =
        amp == std::string_view::npos ? query : query.substr(0, amp);
    query = amp == std::string_view::npos ? std::string_view{}
                                          : query.substr(amp + 1);
    const std::size_t eq = pair.find('=');
    const std::string_view key =
        eq == std::string_view::npos ? pair : pair.substr(0, eq);
    if (key == name) {
      return url_decode(eq == std::string_view::npos ? std::string_view{}
                                                     : pair.substr(eq + 1));
    }
  }
  return std::nullopt;
}

std::vector<std::string> split_names(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= csv.size()) {
    const std::size_t comma = csv.find(',', begin);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > begin) out.push_back(csv.substr(begin, end - begin));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return out;
}

Endpoint classify(std::string_view path) {
  if (path == "/query") return Endpoint::kQuery;
  if (path == "/support") return Endpoint::kSupport;
  if (path == "/stats") return Endpoint::kStats;
  if (path == "/reload") return Endpoint::kReload;
  if (path == "/healthz") return Endpoint::kHealth;
  if (path == "/metrics") return Endpoint::kMetrics;
  return Endpoint::kOther;
}

}  // namespace

std::string url_decode(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '+') {
      out += ' ';
    } else if (c == '%' && i + 2 < text.size()) {
      const int hi = hex_digit(text[i + 1]);
      const int lo = hex_digit(text[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out += static_cast<char>(hi * 16 + lo);
        i += 2;
      } else {
        out += c;
      }
    } else {
      out += c;
    }
  }
  return out;
}

RequestHandler::RequestHandler(std::shared_ptr<const QueryEngine> engine,
                               std::string snapshot_path)
    : handle_(std::move(engine)), snapshot_path_(std::move(snapshot_path)) {}

HttpResponse RequestHandler::handle(std::string_view method,
                                    std::string_view target) {
  const std::size_t question = target.find('?');
  const std::string_view path = question == std::string_view::npos
                                    ? target
                                    : target.substr(0, question);
  const auto begin = std::chrono::steady_clock::now();
  // Tracer-clock stamp of the request start, for pulling this request's
  // span subtree out of the flight ring if it turns out slow.
  const std::uint64_t trace_start_ns =
      slow_query_ns_ != 0 ? Tracer::instance().now_ns() : 0;
  HttpResponse response;
  {
    GPUMINE_SPAN("serve/request");
    response = route(method, target);
  }
  const auto nanos = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - begin)
          .count());
  metrics_.record(classify(path), response.status, nanos);
  if (slow_query_ns_ != 0 && nanos >= slow_query_ns_) {
    log_slow_query(method, target, response.status, nanos, trace_start_ns);
  }
  return response;
}

void RequestHandler::log_slow_query(std::string_view method,
                                    std::string_view target, int status,
                                    std::uint64_t nanos,
                                    std::uint64_t trace_start_ns) {
  // The request's own spans: everything this thread completed since the
  // request began. Empty when flight recording is off.
  std::string spans = "[";
  bool first = true;
  for (const FlightRecorder::SpanCopy& span :
       FlightRecorder::instance().thread_spans_since(trace_start_ns)) {
    if (!first) spans += ',';
    first = false;
    spans += "{\"name\":\"" + analysis::json_escape(span.name) +
             "\",\"start_us\":" + fmt(static_cast<double>(span.start_ns -
                                                          trace_start_ns) /
                                      1e3) +
             ",\"dur_us\":" + fmt(static_cast<double>(span.duration_ns) / 1e3) +
             ",\"depth\":" + std::to_string(span.depth) + "}";
  }
  spans += ']';
  log_warn("serve", "slow query",
           {{"method", method},
            {"target", target},
            {"status", status},
            {"latency_ms", static_cast<double>(nanos) / 1e6},
            {"threshold_ms", static_cast<double>(slow_query_ns_) / 1e6},
            LogField::raw("spans", spans)});
}

HttpResponse RequestHandler::route(std::string_view method,
                                   std::string_view target) {
  const std::size_t question = target.find('?');
  const std::string_view path = question == std::string_view::npos
                                    ? target
                                    : target.substr(0, question);
  const std::string_view query = question == std::string_view::npos
                                     ? std::string_view{}
                                     : target.substr(question + 1);

  if (path == "/healthz") {
    return {200, "text/plain", "ok\n"};
  }
  if (path == "/query") {
    std::optional<std::string> keyword;
    {
      GPUMINE_SPAN("serve/parse");
      keyword = query_param(query, "keyword");
    }
    if (!keyword || keyword->empty()) {
      return error_response(400, "missing ?keyword=");
    }
    std::shared_ptr<const QueryEngine> engine;
    const std::string* json = nullptr;
    {
      GPUMINE_SPAN("serve/engine_lookup");
      engine = handle_.get();
      json = engine->query_json(*keyword);
    }
    if (json == nullptr) {
      return error_response(404,
                            "keyword '" + *keyword + "' is not an item");
    }
    // One string copy; the engine's cached bytes are the response.
    GPUMINE_SPAN("serve/render");
    return {200, "application/json", *json};
  }
  if (path == "/support") {
    const auto items = query_param(query, "items");
    if (!items || items->empty()) {
      return error_response(400, "missing ?items=A,B");
    }
    const std::vector<std::string> names = split_names(*items);
    const std::shared_ptr<const QueryEngine> engine = handle_.get();
    const auto count = engine->support_count(names);
    std::string body = "{\"items\":[";
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (i > 0) body += ',';
      body += '"' + analysis::json_escape(names[i]) + '"';
    }
    body += "],\"frequent\":";
    if (count.has_value()) {
      const double support =
          engine->db_size() == 0
              ? 0.0
              : static_cast<double>(*count) /
                    static_cast<double>(engine->db_size());
      body += "true,\"count\":" + std::to_string(*count) +
              ",\"support\":" + fmt(support);
    } else {
      body += "false,\"count\":0,\"support\":0";
    }
    body += '}';
    return {200, "application/json", std::move(body)};
  }
  if (path == "/stats") {
    const std::shared_ptr<const QueryEngine> engine = handle_.get();
    std::string body = "{\"server\":" + metrics_.snapshot().to_json();
    body += ",\"snapshot\":{\"db_size\":" + std::to_string(engine->db_size());
    body += ",\"items\":" + std::to_string(engine->catalog().size());
    body += ",\"itemsets\":" + std::to_string(engine->num_itemsets());
    body += ",\"rules\":" + std::to_string(engine->num_rules());
    body += ",\"keywords_with_rules\":" +
            std::to_string(engine->num_keywords_with_rules());
    body += "}}";
    return {200, "application/json", std::move(body)};
  }
  if (path == "/metrics") {
    const std::shared_ptr<const QueryEngine> engine = handle_.get();
    SnapshotShape shape;
    shape.db_size = engine->db_size();
    shape.items = engine->catalog().size();
    shape.itemsets = engine->num_itemsets();
    shape.rules = engine->num_rules();
    shape.keywords_with_rules = engine->num_keywords_with_rules();
    return {200, kPrometheusContentType,
            render_prometheus(metrics_.snapshot(), shape)};
  }
  if (path == "/reload") {
    if (method != "POST" && method != "GET") {
      return error_response(405, "use POST /reload");
    }
    const auto reloaded = reload();
    metrics_.record_reload(reloaded.ok());
    if (!reloaded.ok()) {
      log_error("serve", "reload failed",
                {{"error", reloaded.error().to_string()}});
      return error_response(500, reloaded.error().to_string());
    }
    const std::shared_ptr<const QueryEngine> engine = handle_.get();
    log_info("serve", "snapshot reloaded",
             {{"rules", static_cast<std::uint64_t>(engine->num_rules())}});
    return {200, "application/json",
            "{\"reloaded\":true,\"rules\":" +
                std::to_string(engine->num_rules()) + "}"};
  }
  return error_response(404, "no such endpoint");
}

HttpResponse RequestHandler::handle_line(std::string_view line) {
  // Strip trailing CR (telnet/netcat clients).
  while (!line.empty() && (line.back() == '\r' || line.back() == '\n')) {
    line.remove_suffix(1);
  }
  const std::size_t space = line.find(' ');
  const std::string_view verb =
      space == std::string_view::npos ? line : line.substr(0, space);
  const std::string_view rest =
      space == std::string_view::npos ? std::string_view{}
                                      : line.substr(space + 1);
  const auto encode = [](std::string_view text) {
    // Minimal escaping for the internal round trip: the handler decodes
    // %XX, so encode the two separators that would split the target.
    std::string out;
    for (const char c : text) {
      if (c == '%') {
        out += "%25";
      } else if (c == '&') {
        out += "%26";
      } else if (c == '+') {
        out += "%2B";
      } else {
        out += c;
      }
    }
    return out;
  };
  if (verb == "QUERY") return handle("GET", "/query?keyword=" + encode(rest));
  if (verb == "SUPPORT") {
    return handle("GET", "/support?items=" + encode(rest));
  }
  if (verb == "STATS") return handle("GET", "/stats");
  if (verb == "RELOAD") return handle("POST", "/reload");
  if (verb == "HEALTH") return handle("GET", "/healthz");
  return error_response(400, "unknown command (QUERY/SUPPORT/STATS/RELOAD)");
}

Result<bool> RequestHandler::reload() {
  if (snapshot_path_.empty()) {
    return Error{"reload", "no snapshot path configured"};
  }
  auto snapshot = core::load_rule_snapshot_file(snapshot_path_);
  if (!snapshot.ok()) return snapshot.error();
  handle_.publish(
      std::make_shared<const QueryEngine>(std::move(snapshot).value()));
  return true;
}

}  // namespace gpumine::serve
