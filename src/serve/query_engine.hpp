// QueryEngine: the immutable in-memory index behind the rule-query
// server.
//
// A production deployment mines periodically and answers interactive
// root-cause queries from a pre-built structure (the shape of Facebook's
// fast-dimensional-analysis service): here, one QueryEngine is built
// from a core::RuleSnapshot and then never mutated. Construction runs
// the per-keyword half of core::analyze_keyword once for every item in
// the catalog — keyword filtering, Conditions 1-4 pruning, and the JSON
// rendering of analysis/export.hpp — so the serving path is a hash
// lookup returning a pre-rendered response. Because the engine is
// immutable, any number of server threads can read it concurrently with
// no locking, and hot-reload is a shared_ptr swap in EngineHandle
// (serve/engine_handle.hpp), never an in-place update.
//
// The answers are byte-identical to running the one-shot CLI pipeline
// (`gpumine mine --keyword K --format json`) over the same mining
// result: the engine shares the generated rule list across keywords,
// and pruning each keyword's slice is exactly what analyze_keyword
// does (asserted by tests/serve/query_engine_test.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/miner.hpp"
#include "core/snapshot.hpp"
#include "core/support_index.hpp"

namespace gpumine::serve {

class QueryEngine {
 public:
  /// Builds the keyword index: one pruned KeywordAnalysis plus its
  /// pre-rendered JSON response per catalog item. Linear in
  /// |catalog| x |keyword rules|; runs once per snapshot (re)load.
  explicit QueryEngine(core::RuleSnapshot snapshot);

  /// Pre-pruned analysis for a keyword item name, or nullptr when the
  /// name is not in the snapshot's vocabulary.
  [[nodiscard]] const core::KeywordAnalysis* query(
      std::string_view keyword) const;

  /// The pre-rendered JSON response for the same lookup (the exact
  /// bytes of analysis::rules_to_json), or nullptr when unknown.
  [[nodiscard]] const std::string* query_json(std::string_view keyword) const;

  /// Support probe: sigma(items) for a set of item names, through the
  /// snapshot's SupportIndex. nullopt when any name is unknown or the
  /// set is not among the frequent itemsets.
  [[nodiscard]] std::optional<std::uint64_t> support_count(
      const std::vector<std::string>& item_names) const;

  [[nodiscard]] const core::ItemCatalog& catalog() const {
    return snapshot_.catalog;
  }
  [[nodiscard]] const core::SupportIndex& support_index() const {
    return index_;
  }
  [[nodiscard]] std::uint64_t db_size() const {
    return snapshot_.result.db_size;
  }
  [[nodiscard]] std::size_t num_itemsets() const {
    return snapshot_.result.itemsets.size();
  }
  [[nodiscard]] std::size_t num_rules() const {
    return snapshot_.rules.size();
  }
  /// Catalog items with at least one surviving rule.
  [[nodiscard]] std::size_t num_keywords_with_rules() const {
    return keywords_with_rules_;
  }
  /// Every keyword name, in catalog (id) order — the bench and the
  /// /stats endpoint iterate this.
  [[nodiscard]] std::vector<std::string> keyword_names() const;

 private:
  struct Entry {
    core::KeywordAnalysis analysis;
    std::string json;  // rules_to_json(analysis, catalog)
  };

  core::RuleSnapshot snapshot_;
  core::SupportIndex index_;
  std::unordered_map<std::string, Entry> by_keyword_;
  std::size_t keywords_with_rules_ = 0;
};

}  // namespace gpumine::serve
