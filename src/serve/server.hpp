// serve::Server: a small multi-threaded TCP front-end over
// RequestHandler.
//
// One blocking accept thread hands each connection to a worker pool
// (common::ThreadPool); workers parse either protocol and reply:
//
//   HTTP/1.x   "GET /query?keyword=Failed HTTP/1.1" — one request per
//              connection, response carries Content-Length and
//              Connection: close.
//   line       "QUERY Failed\n" — newline-delimited commands on a
//              persistent connection, one JSON line back per command,
//              until the client closes or sends QUIT.
//
// The split keeps every interesting decision in RequestHandler (routing,
// metrics, reload) where it is unit-testable without sockets; this file
// is only fd plumbing. Binding port 0 picks an ephemeral port (read it
// back with port()) so tests and the bench never collide.
//
// stop() is graceful and prompt: the listener closes, in-flight
// connections are shut down, and the worker pool drains before stop()
// returns. Server is not copyable or movable; it owns its pool.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>

#include "common/result.hpp"
#include "common/thread_pool.hpp"
#include "serve/handler.hpp"

namespace gpumine::serve {

struct ServerConfig {
  std::string host = "127.0.0.1";  // numeric IPv4 listen address
  std::uint16_t port = 0;          // 0 = ephemeral (see Server::port())
  std::size_t num_threads = 4;     // connection worker threads
};

class Server {
 public:
  /// The handler must outlive the server; it is shared with whoever
  /// wants to inspect metrics or trigger reloads out of band.
  Server(RequestHandler& handler, ServerConfig config);

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Calls stop().
  ~Server();

  /// Binds, listens, and starts the accept thread. Fails (with errno
  /// context) when the address is unparsable or the port is taken.
  [[nodiscard]] Result<bool> start();

  /// Stops accepting, shuts down open connections, and joins every
  /// worker. Idempotent.
  void stop();

  /// The bound port — the ephemeral one when config.port was 0. Valid
  /// after start() succeeds.
  [[nodiscard]] std::uint16_t port() const { return port_; }

  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }

 private:
  void accept_loop();
  void serve_connection(int fd);

  RequestHandler& handler_;
  ServerConfig config_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  std::unique_ptr<ThreadPool> pool_;

  // Open connection fds, so stop() can unblock workers sitting in
  // recv() on persistent line-protocol sessions.
  std::mutex connections_mutex_;
  std::unordered_set<int> connections_;
};

/// Minimal blocking HTTP/1.1 client for the `gpumine query` CLI and the
/// socket tests: one request, Connection: close, returns the parsed
/// status and body. `host` is a numeric IPv4 address.
[[nodiscard]] Result<HttpResponse> http_request(const std::string& host,
                                                std::uint16_t port,
                                                const std::string& method,
                                                const std::string& target);

[[nodiscard]] inline Result<HttpResponse> http_get(const std::string& host,
                                                   std::uint16_t port,
                                                   const std::string& target) {
  return http_request(host, port, "GET", target);
}

}  // namespace gpumine::serve
