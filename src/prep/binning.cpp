#include "prep/binning.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/ensure.hpp"

namespace gpumine::prep {
namespace {

// Insert-only open-addressing frequency counter keyed on the double's
// bit pattern (-0.0 normalized to +0.0 so the key respects ==; NaNs
// are excluded by the caller). The spike scan counts every present
// value once per column, which made a node-based unordered_map the
// single hottest piece of fit_bins.
class ValueCounter {
 public:
  explicit ValueCounter(std::size_t n) {
    std::size_t cap = 16;
    while (cap < 2 * n) cap <<= 1;
    keys_.resize(cap);
    counts_.assign(cap, 0);
    mask_ = cap - 1;
  }

  void add(double v) {
    const auto key = std::bit_cast<std::uint64_t>(v == 0.0 ? 0.0 : v);
    std::uint64_t h = key * 0x9E3779B97F4A7C15ULL;
    std::size_t i = static_cast<std::size_t>(h ^ (h >> 32)) & mask_;
    while (counts_[i] != 0 && keys_[i] != key) i = (i + 1) & mask_;
    keys_[i] = key;
    ++counts_[i];
  }

  /// Visits every (value, count) pair in unspecified order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i <= mask_; ++i) {
      if (counts_[i] != 0) fn(std::bit_cast<double>(keys_[i]), counts_[i]);
    }
  }

 private:
  std::vector<std::uint64_t> keys_;
  std::vector<std::size_t> counts_;
  std::size_t mask_ = 0;
};

}  // namespace

void BinningParams::validate() const {
  GPUMINE_CHECK_ARG(num_bins >= 1, "num_bins must be >= 1");
  GPUMINE_CHECK_ARG(zero_mass_threshold > 0.0,
                    "zero_mass_threshold must be positive");
  GPUMINE_CHECK_ARG(spike_mass_threshold > 0.0,
                    "spike_mass_threshold must be positive");
  GPUMINE_CHECK_ARG(!bin_prefix.empty(), "bin_prefix must be non-empty");
}

std::optional<std::string> BinSpec::label_for(double v) const {
  if (std::isnan(v)) return std::nullopt;
  if (has_zero_bin && v == 0.0) return zero_label;
  if (spike_value.has_value() && v == *spike_value) return spike_label;
  if (labels.empty()) return std::nullopt;  // nothing left after specials
  // First interval whose interior edge exceeds v; the last bin absorbs
  // everything above the top edge (closed upper end).
  std::size_t bin = static_cast<std::size_t>(
      std::upper_bound(edges.begin(), edges.end(), v) - edges.begin());
  if (bin >= labels.size()) bin = labels.size() - 1;
  return labels[bin];
}

std::size_t BinSpec::num_bins() const {
  return labels.size() + (has_zero_bin ? 1u : 0u) +
         (spike_value.has_value() ? 1u : 0u);
}

BinSpec fit_bins(std::span<const double> values, const BinningParams& params) {
  params.validate();
  BinSpec spec;
  spec.zero_label = params.zero_label;
  spec.spike_label = params.spike_label;

  std::vector<double> present;
  present.reserve(values.size());
  for (double v : values) {
    if (!std::isnan(v)) present.push_back(v);
  }
  if (present.empty()) return spec;

  const auto n_present = static_cast<double>(present.size());

  // Dedicated zero bin.
  const auto zero_count = static_cast<double>(
      std::count(present.begin(), present.end(), 0.0));
  if (zero_count / n_present >= params.zero_mass_threshold) {
    spec.has_zero_bin = true;
  }

  // Dedicated spike bin: the most frequent exact non-zero value, when it
  // carries enough mass.
  {
    ValueCounter freq(present.size());
    for (double v : present) {
      if (v != 0.0 || !spec.has_zero_bin) freq.add(v);
    }
    double best_value = 0.0;
    std::size_t best_count = 0;
    freq.for_each([&](double v, std::size_t c) {
      if (c > best_count || (c == best_count && v < best_value)) {
        best_value = v;
        best_count = c;
      }
    });
    if (best_count > 0 &&
        static_cast<double>(best_count) / n_present >=
            params.spike_mass_threshold &&
        !(spec.has_zero_bin && best_value == 0.0)) {
      spec.spike_value = best_value;
    }
  }

  // Residual values get the quantile (or width) edges.
  std::vector<double> residual;
  residual.reserve(present.size());
  for (double v : present) {
    if (spec.has_zero_bin && v == 0.0) continue;
    if (spec.spike_value.has_value() && v == *spec.spike_value) continue;
    residual.push_back(v);
  }
  if (residual.empty()) return spec;  // specials consumed everything

  // Selection instead of a full sort: the edges only need the minimum
  // (plus the maximum for equal-width) and the k-1 interior quantile
  // order statistics. Ascending nth_element calls narrow the suffix
  // each time and reproduce exactly the values a full sort would put at
  // those indices — ties included — so the edges stay bit-identical.
  const int k = params.num_bins;
  const double lo = *std::min_element(residual.begin(), residual.end());
  std::vector<double> edges;
  if (params.equal_width) {
    const double hi = *std::max_element(residual.begin(), residual.end());
    for (int i = 1; i < k; ++i) {
      edges.push_back(lo + (hi - lo) * static_cast<double>(i) /
                               static_cast<double>(k));
    }
  } else {
    std::size_t done = 0;   // index of the last selected order statistic
    bool selected = false;  // whether any selection has run yet
    for (int i = 1; i < k; ++i) {
      // Nearest-rank quantile over the (virtually) sorted residuals.
      const auto idx = static_cast<std::size_t>(
          std::min<double>(static_cast<double>(residual.size() - 1),
                           std::floor(static_cast<double>(residual.size()) *
                                      static_cast<double>(i) /
                                      static_cast<double>(k))));
      if (!selected || idx != done) {
        // After a selection at `done`, positions [done, n) hold order
        // statistics done..n-1, so the next one skips that prefix.
        std::nth_element(
            residual.begin() +
                static_cast<std::ptrdiff_t>(selected ? done : 0),
            residual.begin() + static_cast<std::ptrdiff_t>(idx),
            residual.end());
        done = idx;
        selected = true;
      }
      edges.push_back(residual[idx]);
    }
  }
  // Heavy ties produce duplicate edges; merging them collapses empty bins.
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  // An edge at or below the minimum would create an empty first bin.
  while (!edges.empty() && edges.front() <= lo) {
    edges.erase(edges.begin());
  }

  spec.edges = edges;
  for (std::size_t i = 0; i <= edges.size(); ++i) {
    spec.labels.push_back(params.bin_prefix + std::to_string(i + 1));
  }
  return spec;
}

CategoricalColumn apply_bins(const NumericColumn& column, const BinSpec& spec) {
  // Same classification as label_for, but each label is interned once
  // at its first occurrence (preserving the dictionary order a per-row
  // push would produce) and subsequent rows append the cached code —
  // no per-row string materialization or hashing.
  CategoricalColumn out;
  constexpr std::int32_t kUnseen = -2;
  // Slots: 0 = zero bin, 1 = spike bin, 2+i = interval bin i.
  std::vector<std::int32_t> code_of_slot(2 + spec.labels.size(), kUnseen);
  const auto push_slot = [&](std::size_t slot, const std::string& label) {
    std::int32_t& code = code_of_slot[slot];
    if (code == kUnseen) code = out.intern(label);
    out.push_code(code);
  };
  for (double v : column.values) {
    if (std::isnan(v)) {
      out.push_missing();
    } else if (spec.has_zero_bin && v == 0.0) {
      push_slot(0, spec.zero_label);
    } else if (spec.spike_value.has_value() && v == *spec.spike_value) {
      push_slot(1, spec.spike_label);
    } else if (spec.labels.empty()) {
      out.push_missing();
    } else {
      std::size_t bin = static_cast<std::size_t>(
          std::upper_bound(spec.edges.begin(), spec.edges.end(), v) -
          spec.edges.begin());
      if (bin >= spec.labels.size()) bin = spec.labels.size() - 1;
      push_slot(2 + bin, spec.labels[bin]);
    }
  }
  return out;
}

BinSpec bin_column(Table& table, std::string_view name,
                   const BinningParams& params) {
  const NumericColumn& column = table.numeric(name);
  BinSpec spec = fit_bins(column.values, params);
  table.replace_column(name, apply_bins(column, spec));
  return spec;
}

}  // namespace gpumine::prep
