#include "prep/binning.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/ensure.hpp"

namespace gpumine::prep {

void BinningParams::validate() const {
  GPUMINE_CHECK_ARG(num_bins >= 1, "num_bins must be >= 1");
  GPUMINE_CHECK_ARG(zero_mass_threshold > 0.0,
                    "zero_mass_threshold must be positive");
  GPUMINE_CHECK_ARG(spike_mass_threshold > 0.0,
                    "spike_mass_threshold must be positive");
  GPUMINE_CHECK_ARG(!bin_prefix.empty(), "bin_prefix must be non-empty");
}

std::optional<std::string> BinSpec::label_for(double v) const {
  if (std::isnan(v)) return std::nullopt;
  if (has_zero_bin && v == 0.0) return zero_label;
  if (spike_value.has_value() && v == *spike_value) return spike_label;
  if (labels.empty()) return std::nullopt;  // nothing left after specials
  // First interval whose interior edge exceeds v; the last bin absorbs
  // everything above the top edge (closed upper end).
  std::size_t bin = static_cast<std::size_t>(
      std::upper_bound(edges.begin(), edges.end(), v) - edges.begin());
  if (bin >= labels.size()) bin = labels.size() - 1;
  return labels[bin];
}

std::size_t BinSpec::num_bins() const {
  return labels.size() + (has_zero_bin ? 1u : 0u) +
         (spike_value.has_value() ? 1u : 0u);
}

BinSpec fit_bins(std::span<const double> values, const BinningParams& params) {
  params.validate();
  BinSpec spec;
  spec.zero_label = params.zero_label;
  spec.spike_label = params.spike_label;

  std::vector<double> present;
  present.reserve(values.size());
  for (double v : values) {
    if (!std::isnan(v)) present.push_back(v);
  }
  if (present.empty()) return spec;

  const auto n_present = static_cast<double>(present.size());

  // Dedicated zero bin.
  const auto zero_count = static_cast<double>(
      std::count(present.begin(), present.end(), 0.0));
  if (zero_count / n_present >= params.zero_mass_threshold) {
    spec.has_zero_bin = true;
  }

  // Dedicated spike bin: the most frequent exact non-zero value, when it
  // carries enough mass.
  {
    std::unordered_map<double, std::size_t> freq;
    for (double v : present) {
      if (v != 0.0 || !spec.has_zero_bin) ++freq[v];
    }
    double best_value = 0.0;
    std::size_t best_count = 0;
    for (const auto& [v, c] : freq) {
      if (c > best_count || (c == best_count && v < best_value)) {
        best_value = v;
        best_count = c;
      }
    }
    if (best_count > 0 &&
        static_cast<double>(best_count) / n_present >=
            params.spike_mass_threshold &&
        !(spec.has_zero_bin && best_value == 0.0)) {
      spec.spike_value = best_value;
    }
  }

  // Residual values get the quantile (or width) edges.
  std::vector<double> residual;
  residual.reserve(present.size());
  for (double v : present) {
    if (spec.has_zero_bin && v == 0.0) continue;
    if (spec.spike_value.has_value() && v == *spec.spike_value) continue;
    residual.push_back(v);
  }
  if (residual.empty()) return spec;  // specials consumed everything

  std::sort(residual.begin(), residual.end());
  const int k = params.num_bins;
  std::vector<double> edges;
  if (params.equal_width) {
    const double lo = residual.front();
    const double hi = residual.back();
    for (int i = 1; i < k; ++i) {
      edges.push_back(lo + (hi - lo) * static_cast<double>(i) /
                               static_cast<double>(k));
    }
  } else {
    for (int i = 1; i < k; ++i) {
      // Nearest-rank quantile over the sorted residuals.
      const auto idx = static_cast<std::size_t>(
          std::min<double>(static_cast<double>(residual.size() - 1),
                           std::floor(static_cast<double>(residual.size()) *
                                      static_cast<double>(i) /
                                      static_cast<double>(k))));
      edges.push_back(residual[idx]);
    }
  }
  // Heavy ties produce duplicate edges; merging them collapses empty bins.
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  // An edge at or below the minimum would create an empty first bin.
  while (!edges.empty() && edges.front() <= residual.front()) {
    edges.erase(edges.begin());
  }

  spec.edges = edges;
  for (std::size_t i = 0; i <= edges.size(); ++i) {
    spec.labels.push_back(params.bin_prefix + std::to_string(i + 1));
  }
  return spec;
}

CategoricalColumn apply_bins(const NumericColumn& column, const BinSpec& spec) {
  CategoricalColumn out;
  for (double v : column.values) {
    if (auto label = spec.label_for(v); label.has_value()) {
      out.push(*label);
    } else {
      out.push_missing();
    }
  }
  return out;
}

BinSpec bin_column(Table& table, std::string_view name,
                   const BinningParams& params) {
  const NumericColumn& column = table.numeric(name);
  BinSpec spec = fit_bins(column.values, params);
  table.replace_column(name, apply_bins(column, spec));
  return spec;
}

}  // namespace gpumine::prep
