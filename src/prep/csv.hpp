// CSV import/export for job-feature tables.
//
// The reader handles RFC-4180 quoting (embedded commas, quotes, and
// newlines), infers column types (a column is numeric when every
// non-empty cell parses as a double), and maps empty cells to missing.
// Recoverable input problems come back as Result errors with file/line
// context, never exceptions.
//
// Parsing is a two-pass design over the slurped text: a serial
// quote-parity scan finds record boundaries (exact under RFC-4180 —
// see split_records), then field splitting, type inference, and column
// construction run chunked across a thread pool when
// CsvParams::num_threads > 1. Output is byte-identical to the serial
// path for any thread count.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "common/result.hpp"
#include "prep/table.hpp"

namespace gpumine::prep {

struct CsvParams {
  char delimiter = ',';
  /// Force these columns to be categorical even if all cells parse as
  /// numbers (ids, zip-code-like fields).
  std::vector<std::string> force_categorical;
  /// Worker threads for field splitting, type inference, and column
  /// construction. 0 = hardware concurrency, 1 = fully serial (no pool
  /// is created). The parsed Table is identical for any value.
  std::size_t num_threads = 1;
};

/// Parses CSV text (first row = header) into a Table.
[[nodiscard]] Result<Table> read_csv(std::istream& in,
                                     const CsvParams& params = {},
                                     std::string_view context = "csv");

/// Reads a CSV file from disk.
[[nodiscard]] Result<Table> read_csv_file(const std::string& path,
                                          const CsvParams& params = {});

/// Writes a table as CSV (header + rows). Missing cells are empty.
void write_csv(const Table& table, std::ostream& out,
               const CsvParams& params = {});

/// Writes to a file; returns an error when the file cannot be opened.
[[nodiscard]] Result<bool> write_csv_file(const Table& table,
                                          const std::string& path,
                                          const CsvParams& params = {});

}  // namespace gpumine::prep
