#include "prep/encoder.hpp"

#include <algorithm>

#include "common/ensure.hpp"

namespace gpumine::prep {

void EncoderParams::validate() const {
  GPUMINE_CHECK_ARG(dominance_threshold > 0.0,
                    "dominance_threshold must be positive");
}

EncodeResult encode(const Table& table, const EncoderParams& params) {
  params.validate();
  const std::size_t rows = table.num_rows();
  EncodeResult result;

  // Pass 1: per-item row counts, to apply the dominance filter before any
  // ids are handed out (keeps the catalog free of dropped items).
  struct ColumnPlan {
    const CategoricalColumn* column;
    bool bare;
    std::string name;
  };
  std::vector<ColumnPlan> plan;
  for (std::size_t c = 0; c < table.num_columns(); ++c) {
    const std::string& name = table.column_name(c);
    GPUMINE_CHECK_ARG(!table.is_numeric(name),
                      "column '" + name +
                          "' is numeric; bin it before encoding");
    const bool bare =
        std::find(params.bare_label_columns.begin(),
                  params.bare_label_columns.end(),
                  name) != params.bare_label_columns.end();
    plan.push_back({&table.categorical(name), bare, name});
  }

  const double limit =
      params.dominance_threshold * static_cast<double>(rows);

  // Per column: which label codes survive, and their item names.
  std::vector<std::vector<bool>> keep(plan.size());
  std::vector<std::vector<std::string>> item_names(plan.size());
  for (std::size_t c = 0; c < plan.size(); ++c) {
    const auto counts = plan[c].column->value_counts();
    keep[c].resize(counts.size());
    item_names[c].resize(counts.size());
    for (std::size_t code = 0; code < counts.size(); ++code) {
      const std::string& label =
          plan[c].column->label_of_code(static_cast<std::int32_t>(code));
      const std::string item =
          plan[c].bare ? label : plan[c].name + " = " + label;
      item_names[c][code] = item;
      if (static_cast<double>(counts[code]) > limit) {
        keep[c][code] = false;
        if (counts[code] > 0) result.dropped_items.push_back(item);
      } else {
        keep[c][code] = true;
      }
    }
  }

  // Pass 2: intern surviving items in deterministic (column, code) order,
  // then emit transactions.
  for (std::size_t c = 0; c < plan.size(); ++c) {
    for (std::size_t code = 0; code < item_names[c].size(); ++code) {
      if (keep[c][code]) result.catalog.intern(item_names[c][code]);
    }
  }

  result.db.reserve(rows, rows * plan.size());
  core::Itemset txn;
  for (std::size_t r = 0; r < rows; ++r) {
    txn.clear();
    for (std::size_t c = 0; c < plan.size(); ++c) {
      if (plan[c].column->is_missing(r)) continue;
      const auto code = static_cast<std::size_t>(plan[c].column->code(r));
      if (!keep[c][code]) continue;
      txn.push_back(*result.catalog.find(item_names[c][code]));
    }
    result.db.add(txn);
  }
  return result;
}

}  // namespace gpumine::prep
