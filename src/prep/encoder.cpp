#include "prep/encoder.hpp"

#include <algorithm>
#include <limits>
#include <optional>
#include <thread>

#include "common/ensure.hpp"
#include "common/thread_pool.hpp"
#include "common/trace.hpp"

namespace gpumine::prep {

void EncoderParams::validate() const {
  GPUMINE_CHECK_ARG(dominance_threshold > 0.0,
                    "dominance_threshold must be positive");
}

EncodeResult encode(const Table& table, const EncoderParams& params) {
  GPUMINE_SPAN("prep/encode");
  params.validate();
  const std::size_t rows = table.num_rows();
  EncodeResult result;

  // Pass 1: per-item row counts, to apply the dominance filter before any
  // ids are handed out (keeps the catalog free of dropped items).
  struct ColumnPlan {
    const CategoricalColumn* column;
    bool bare;
    std::string name;
  };
  std::vector<ColumnPlan> plan;
  for (std::size_t c = 0; c < table.num_columns(); ++c) {
    const std::string& name = table.column_name(c);
    GPUMINE_CHECK_ARG(!table.is_numeric(name),
                      "column '" + name +
                          "' is numeric; bin it before encoding");
    const bool bare =
        std::find(params.bare_label_columns.begin(),
                  params.bare_label_columns.end(),
                  name) != params.bare_label_columns.end();
    plan.push_back({&table.categorical(name), bare, name});
  }

  const double limit =
      params.dominance_threshold * static_cast<double>(rows);

  std::size_t threads = params.num_threads;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  std::optional<ThreadPool> pool;
  if (threads > 1 && rows > 0) pool.emplace(threads);

  // Per column: which label codes survive, their item names, and the
  // column's dominance-dropped items. Columns are independent, so the
  // counting pass runs one column per pool task; dropped_items are
  // concatenated in column order afterwards, keeping the reporting
  // order identical to the serial sweep.
  std::vector<std::vector<bool>> keep(plan.size());
  std::vector<std::vector<std::string>> item_names(plan.size());
  std::vector<std::vector<std::string>> dropped(plan.size());
  const auto count_column = [&](std::size_t c) {
    const auto counts = plan[c].column->value_counts();
    keep[c].resize(counts.size());
    item_names[c].resize(counts.size());
    for (std::size_t code = 0; code < counts.size(); ++code) {
      const std::string& label =
          plan[c].column->label_of_code(static_cast<std::int32_t>(code));
      const std::string item =
          plan[c].bare ? label : plan[c].name + " = " + label;
      item_names[c][code] = item;
      if (static_cast<double>(counts[code]) > limit) {
        keep[c][code] = false;
        if (counts[code] > 0) dropped[c].push_back(item);
      } else {
        keep[c][code] = true;
      }
    }
  };
  if (pool) {
    pool->parallel_for(plan.size(), count_column);
  } else {
    for (std::size_t c = 0; c < plan.size(); ++c) count_column(c);
  }
  for (std::vector<std::string>& d : dropped) {
    std::move(d.begin(), d.end(), std::back_inserter(result.dropped_items));
  }

  // Pass 2: intern surviving items in deterministic (column, code) order,
  // recording each id so the row pass never touches the catalog's hash.
  constexpr core::ItemId kDropped = std::numeric_limits<core::ItemId>::max();
  std::vector<std::vector<core::ItemId>> ids(plan.size());
  for (std::size_t c = 0; c < plan.size(); ++c) {
    ids[c].assign(item_names[c].size(), kDropped);
    for (std::size_t code = 0; code < item_names[c].size(); ++code) {
      if (keep[c][code]) {
        ids[c][code] = result.catalog.intern(item_names[c][code]);
      }
    }
  }

  // Pass 3: encode rows. Chunks build their transactions independently
  // (TransactionDb::add canonicalizes each one on append, as before);
  // the serial append in chunk order makes the database identical to
  // the row-by-row sweep.
  const std::size_t num_chunks =
      pool ? std::max<std::size_t>(1, std::min(rows, threads * 4)) : 1;
  std::vector<std::vector<core::Itemset>> chunk_txns(num_chunks);
  const auto encode_chunk = [&](std::size_t i) {
    GPUMINE_SPAN("prep/encode_chunk");
    const std::size_t lo = rows * i / num_chunks;
    const std::size_t hi = rows * (i + 1) / num_chunks;
    chunk_txns[i].reserve(hi - lo);
    core::Itemset txn;
    for (std::size_t r = lo; r < hi; ++r) {
      txn.clear();
      for (std::size_t c = 0; c < plan.size(); ++c) {
        if (plan[c].column->is_missing(r)) continue;
        const auto code = static_cast<std::size_t>(plan[c].column->code(r));
        if (ids[c][code] == kDropped) continue;
        txn.push_back(ids[c][code]);
      }
      chunk_txns[i].push_back(txn);
    }
  };
  if (pool) {
    pool->parallel_for(num_chunks, encode_chunk);
  } else {
    for (std::size_t i = 0; i < num_chunks; ++i) encode_chunk(i);
  }

  result.db.reserve(rows, rows * plan.size());
  for (std::vector<core::Itemset>& txns : chunk_txns) {
    for (core::Itemset& txn : txns) result.db.add(std::move(txn));
  }
  return result;
}

}  // namespace gpumine::prep
