#include "prep/join.hpp"

#include <unordered_map>
#include <variant>

#include "common/ensure.hpp"

namespace gpumine::prep {

Table left_join(const Table& left, const Table& right, std::string_view key) {
  const CategoricalColumn& lkey = left.categorical(key);
  const CategoricalColumn& rkey = right.categorical(key);
  const std::size_t lrows = left.num_rows();
  const std::size_t rrows = right.num_rows();

  // Index right rows by key label.
  std::unordered_map<std::string, std::size_t> right_index;
  right_index.reserve(rrows);
  for (std::size_t r = 0; r < rrows; ++r) {
    if (rkey.is_missing(r)) continue;
    const auto [it, inserted] = right_index.emplace(rkey.label(r), r);
    GPUMINE_CHECK_ARG(inserted, "duplicate right key '" + rkey.label(r) +
                                    "' in join on '" + std::string(key) + "'");
  }

  // Start from a full copy of the left table.
  Table out = left.filter_rows(std::vector<bool>(lrows, true));

  for (std::size_t c = 0; c < right.num_columns(); ++c) {
    const std::string& name = right.column_name(c);
    if (name == key) continue;
    const std::string out_name =
        out.has_column(name) ? name + "_right" : name;

    if (right.is_numeric(name)) {
      const NumericColumn& src = right.numeric(name);
      NumericColumn& dst = out.add_numeric(out_name);
      for (std::size_t r = 0; r < lrows; ++r) {
        if (lkey.is_missing(r)) {
          dst.push_missing();
          continue;
        }
        auto it = right_index.find(lkey.label(r));
        if (it == right_index.end()) {
          dst.push_missing();
        } else {
          dst.push(src.values[it->second]);
        }
      }
    } else {
      const CategoricalColumn& src = right.categorical(name);
      CategoricalColumn& dst = out.add_categorical(out_name);
      for (std::size_t r = 0; r < lrows; ++r) {
        if (lkey.is_missing(r)) {
          dst.push_missing();
          continue;
        }
        auto it = right_index.find(lkey.label(r));
        if (it == right_index.end() || src.is_missing(it->second)) {
          dst.push_missing();
        } else {
          dst.push(src.label(it->second));
        }
      }
    }
  }
  return out;
}

}  // namespace gpumine::prep
