#include "prep/table.hpp"

#include <cmath>
#include <limits>

#include "common/ensure.hpp"

namespace gpumine::prep {

void NumericColumn::push_missing() {
  values.push_back(std::numeric_limits<double>::quiet_NaN());
}

bool NumericColumn::is_missing(std::size_t row) const {
  return std::isnan(values[row]);
}

void CategoricalColumn::push(std::string_view label) {
  codes_.push_back(intern(label));
}

void CategoricalColumn::push_code(std::int32_t code) {
  GPUMINE_CHECK_ARG(
      code == kMissing ||
          (code >= 0 && static_cast<std::size_t>(code) < labels_.size()),
      "push_code: unknown code " + std::to_string(code));
  codes_.push_back(code);
}

std::int32_t CategoricalColumn::intern(std::string_view label) {
  if (auto it = index_.find(std::string(label)); it != index_.end()) {
    return it->second;
  }
  const auto code = static_cast<std::int32_t>(labels_.size());
  labels_.emplace_back(label);
  index_.emplace(labels_.back(), code);
  return code;
}

std::optional<std::int32_t> CategoricalColumn::find(
    std::string_view label) const {
  auto it = index_.find(std::string(label));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

const std::string& CategoricalColumn::label(std::size_t row) const {
  const std::int32_t code = codes_[row];
  GPUMINE_CHECK_ARG(code != kMissing, "label() on missing row");
  return labels_[static_cast<std::size_t>(code)];
}

const std::string& CategoricalColumn::label_of_code(std::int32_t code) const {
  GPUMINE_CHECK_ARG(
      code >= 0 && static_cast<std::size_t>(code) < labels_.size(),
      "unknown code " + std::to_string(code));
  return labels_[static_cast<std::size_t>(code)];
}

std::vector<std::uint64_t> CategoricalColumn::value_counts() const {
  std::vector<std::uint64_t> counts(labels_.size(), 0);
  for (std::int32_t code : codes_) {
    if (code != kMissing) ++counts[static_cast<std::size_t>(code)];
  }
  return counts;
}

NumericColumn& Table::add_numeric(std::string name) {
  GPUMINE_CHECK_ARG(!has_column(name), "duplicate column '" + name + "'");
  index_.emplace(name, columns_.size());
  names_.push_back(std::move(name));
  columns_.emplace_back(NumericColumn{});
  return std::get<NumericColumn>(columns_.back());
}

CategoricalColumn& Table::add_categorical(std::string name) {
  GPUMINE_CHECK_ARG(!has_column(name), "duplicate column '" + name + "'");
  index_.emplace(name, columns_.size());
  names_.push_back(std::move(name));
  columns_.emplace_back(CategoricalColumn{});
  return std::get<CategoricalColumn>(columns_.back());
}

bool Table::has_column(std::string_view name) const {
  return index_.contains(std::string(name));
}

std::size_t Table::index_of(std::string_view name) const {
  auto it = index_.find(std::string(name));
  GPUMINE_CHECK_ARG(it != index_.end(),
                    "unknown column '" + std::string(name) + "'");
  return it->second;
}

const Column& Table::column(std::string_view name) const {
  return columns_[index_of(name)];
}

Column& Table::column(std::string_view name) {
  return columns_[index_of(name)];
}

const NumericColumn& Table::numeric(std::string_view name) const {
  const Column& col = column(name);
  GPUMINE_CHECK_ARG(std::holds_alternative<NumericColumn>(col),
                    "column '" + std::string(name) + "' is not numeric");
  return std::get<NumericColumn>(col);
}

const CategoricalColumn& Table::categorical(std::string_view name) const {
  const Column& col = column(name);
  GPUMINE_CHECK_ARG(std::holds_alternative<CategoricalColumn>(col),
                    "column '" + std::string(name) + "' is not categorical");
  return std::get<CategoricalColumn>(col);
}

bool Table::is_numeric(std::string_view name) const {
  return std::holds_alternative<NumericColumn>(column(name));
}

namespace {
std::size_t column_size(const Column& col) {
  return std::visit([](const auto& c) { return c.size(); }, col);
}
}  // namespace

void Table::replace_column(std::string_view name, Column column) {
  const std::size_t i = index_of(name);
  GPUMINE_CHECK_ARG(column_size(column) == column_size(columns_[i]),
                    "replacement column size mismatch for '" +
                        std::string(name) + "'");
  columns_[i] = std::move(column);
}

void Table::drop_column(std::string_view name) {
  const std::size_t i = index_of(name);
  columns_.erase(columns_.begin() + static_cast<std::ptrdiff_t>(i));
  names_.erase(names_.begin() + static_cast<std::ptrdiff_t>(i));
  index_.clear();
  for (std::size_t j = 0; j < names_.size(); ++j) index_.emplace(names_[j], j);
}

std::size_t Table::num_rows() const {
  if (columns_.empty()) return 0;
  const std::size_t rows = column_size(columns_.front());
  for (std::size_t i = 1; i < columns_.size(); ++i) {
    GPUMINE_ENSURE(column_size(columns_[i]) == rows,
                   "ragged table: column '" + names_[i] + "' has " +
                       std::to_string(column_size(columns_[i])) +
                       " rows, expected " + std::to_string(rows));
  }
  return rows;
}

Table Table::filter_rows(const std::vector<bool>& keep) const {
  GPUMINE_CHECK_ARG(keep.size() == num_rows(),
                    "filter mask size mismatch");
  Table out;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (const auto* num = std::get_if<NumericColumn>(&columns_[c])) {
      NumericColumn& dst = out.add_numeric(names_[c]);
      for (std::size_t r = 0; r < keep.size(); ++r) {
        if (keep[r]) dst.push(num->values[r]);
      }
    } else {
      const auto& cat = std::get<CategoricalColumn>(columns_[c]);
      CategoricalColumn& dst = out.add_categorical(names_[c]);
      for (std::size_t r = 0; r < keep.size(); ++r) {
        if (!keep[r]) continue;
        if (cat.is_missing(r)) {
          dst.push_missing();
        } else {
          dst.push(cat.label(r));
        }
      }
    }
  }
  return out;
}

}  // namespace gpumine::prep
