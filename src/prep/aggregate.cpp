#include "prep/aggregate.hpp"

#include <algorithm>
#include <cstdint>
#include <numeric>

#include "common/ensure.hpp"

namespace gpumine::prep {

void ShareGroupingParams::validate() const {
  GPUMINE_CHECK_ARG(top_share >= 0.0 && top_share <= 1.0,
                    "top_share must be in [0, 1]");
  GPUMINE_CHECK_ARG(bottom_share >= 0.0 && bottom_share <= 1.0,
                    "bottom_share must be in [0, 1]");
  GPUMINE_CHECK_ARG(!top_label.empty() && !middle_label.empty() &&
                        !bottom_label.empty(),
                    "group labels must be non-empty");
}

CategoricalColumn group_by_share(const CategoricalColumn& column,
                                 const ShareGroupingParams& params) {
  params.validate();
  const std::vector<std::uint64_t> counts = column.value_counts();
  const std::uint64_t total =
      std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});

  // Rank labels by count descending, ties by label ascending.
  std::vector<std::int32_t> order(counts.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::int32_t a, std::int32_t b) {
    const auto ca = counts[static_cast<std::size_t>(a)];
    const auto cb = counts[static_cast<std::size_t>(b)];
    if (ca != cb) return ca > cb;
    return column.label_of_code(a) < column.label_of_code(b);
  });

  enum class Group : std::uint8_t { kMiddle, kTop, kBottom };
  std::vector<Group> group(counts.size(), Group::kMiddle);

  const auto target_top = static_cast<double>(total) * params.top_share;
  std::uint64_t covered = 0;
  std::size_t top_end = 0;  // ranks [0, top_end) are "top"
  while (top_end < order.size() &&
         static_cast<double>(covered) < target_top) {
    covered += counts[static_cast<std::size_t>(order[top_end])];
    group[static_cast<std::size_t>(order[top_end])] = Group::kTop;
    ++top_end;
  }

  const auto target_bottom = static_cast<double>(total) * params.bottom_share;
  covered = 0;
  for (std::size_t r = order.size();
       r-- > top_end && static_cast<double>(covered) < target_bottom;) {
    covered += counts[static_cast<std::size_t>(order[r])];
    group[static_cast<std::size_t>(order[r])] = Group::kBottom;
  }

  CategoricalColumn out;
  for (std::size_t row = 0; row < column.size(); ++row) {
    if (column.is_missing(row)) {
      out.push_missing();
      continue;
    }
    switch (group[static_cast<std::size_t>(column.code(row))]) {
      case Group::kTop:
        out.push(params.top_label);
        break;
      case Group::kMiddle:
        out.push(params.middle_label);
        break;
      case Group::kBottom:
        out.push(params.bottom_label);
        break;
    }
  }
  return out;
}

CategoricalColumn merge_categories(
    const CategoricalColumn& column,
    const std::unordered_map<std::string, std::string>& mapping,
    std::string_view fallback) {
  CategoricalColumn out;
  for (std::size_t row = 0; row < column.size(); ++row) {
    if (column.is_missing(row)) {
      out.push_missing();
      continue;
    }
    const std::string& label = column.label(row);
    if (auto it = mapping.find(label); it != mapping.end()) {
      out.push(it->second);
    } else if (!fallback.empty()) {
      out.push(fallback);
    } else {
      out.push(label);
    }
  }
  return out;
}

void group_column_by_share(Table& table, std::string_view name,
                           const ShareGroupingParams& params) {
  table.replace_column(name, group_by_share(table.categorical(name), params));
}

void merge_column_categories(
    Table& table, std::string_view name,
    const std::unordered_map<std::string, std::string>& mapping,
    std::string_view fallback) {
  table.replace_column(
      name, merge_categories(table.categorical(name), mapping, fallback));
}

}  // namespace gpumine::prep
