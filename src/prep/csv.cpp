#include "prep/csv.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <vector>

namespace gpumine::prep {
namespace {

// Reads one CSV record (may span physical lines inside quotes).
// Returns false at EOF with no data.
bool read_record(std::istream& in, char delimiter,
                 std::vector<std::string>& fields, std::size_t& line_no,
                 bool& bad_quoting) {
  fields.clear();
  bad_quoting = false;
  std::string field;
  bool in_quotes = false;
  bool after_quote = false;  // the current field's quoted section closed
  bool any = false;
  int ch = 0;
  while ((ch = in.get()) != EOF) {
    any = true;
    const char c = static_cast<char>(ch);
    if (in_quotes) {
      if (c == '"') {
        if (in.peek() == '"') {
          field.push_back('"');
          in.get();
        } else {
          in_quotes = false;
          after_quote = true;
        }
      } else {
        if (c == '\n') ++line_no;
        field.push_back(c);
      }
    } else if (c == '"') {
      if (!field.empty() || after_quote) {
        bad_quoting = true;  // quote opening mid-field, or reopening
      }
      in_quotes = true;
    } else if (c == delimiter) {
      fields.push_back(std::move(field));
      field.clear();
      after_quote = false;
    } else if (c == '\r') {
      // swallow; \r\n handled by the \n branch
    } else if (c == '\n') {
      ++line_no;
      fields.push_back(std::move(field));
      return true;
    } else {
      if (after_quote) {
        bad_quoting = true;  // trailing text after a closing quote
      }
      field.push_back(c);
    }
  }
  if (in_quotes) bad_quoting = true;
  if (!any) return false;
  fields.push_back(std::move(field));
  return true;
}

bool parse_double(const std::string& s, double& out) {
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(*begin))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(end[-1]))) {
    --end;
  }
  if (begin == end) return false;
  auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

bool needs_quoting(const std::string& s, char delimiter) {
  return s.find(delimiter) != std::string::npos ||
         s.find('"') != std::string::npos || s.find('\n') != std::string::npos;
}

void write_field(std::ostream& out, const std::string& s, char delimiter) {
  if (!needs_quoting(s, delimiter)) {
    out << s;
    return;
  }
  out << '"';
  for (char c : s) {
    if (c == '"') out << '"';
    out << c;
  }
  out << '"';
}

}  // namespace

Result<Table> read_csv(std::istream& in, const CsvParams& params,
                       std::string_view context) {
  std::vector<std::string> header;
  std::size_t line_no = 1;
  bool bad_quoting = false;
  if (!read_record(in, params.delimiter, header, line_no, bad_quoting)) {
    return Error{std::string(context), "empty input"};
  }
  if (bad_quoting) {
    return Error{std::string(context) + ":1", "malformed quoting in header"};
  }
  for (const std::string& name : header) {
    if (name.empty()) {
      return Error{std::string(context) + ":1", "empty column name"};
    }
  }
  if (std::unordered_map<std::string, int> seen;
      std::any_of(header.begin(), header.end(),
                  [&](const std::string& h) { return seen[h]++ > 0; })) {
    return Error{std::string(context) + ":1", "duplicate column name"};
  }

  // Collect raw cells; type inference needs the whole column.
  std::vector<std::vector<std::string>> cells(header.size());
  std::vector<std::string> fields;
  std::size_t record_line = line_no;  // where the upcoming record starts
  while (read_record(in, params.delimiter, fields, line_no, bad_quoting)) {
    if (bad_quoting) {
      return Error{std::string(context) + ":" + std::to_string(record_line),
                   "malformed quoting"};
    }
    if (fields.size() == 1 && fields[0].empty()) {  // blank line
      record_line = line_no;
      continue;
    }
    if (fields.size() != header.size()) {
      return Error{std::string(context) + ":" + std::to_string(record_line),
                   "expected " + std::to_string(header.size()) +
                       " fields, got " + std::to_string(fields.size())};
    }
    record_line = line_no;
    for (std::size_t c = 0; c < fields.size(); ++c) {
      cells[c].push_back(std::move(fields[c]));
    }
  }

  Table table;
  for (std::size_t c = 0; c < header.size(); ++c) {
    const bool forced = std::find(params.force_categorical.begin(),
                                  params.force_categorical.end(),
                                  header[c]) != params.force_categorical.end();
    bool numeric = !forced;
    double tmp = 0.0;
    if (numeric) {
      for (const std::string& cell : cells[c]) {
        if (!cell.empty() && !parse_double(cell, tmp)) {
          numeric = false;
          break;
        }
      }
    }
    if (numeric) {
      NumericColumn& col = table.add_numeric(header[c]);
      for (const std::string& cell : cells[c]) {
        if (cell.empty()) {
          col.push_missing();
        } else {
          parse_double(cell, tmp);
          col.push(tmp);
        }
      }
    } else {
      CategoricalColumn& col = table.add_categorical(header[c]);
      for (const std::string& cell : cells[c]) {
        if (cell.empty()) {
          col.push_missing();
        } else {
          col.push(cell);
        }
      }
    }
  }
  return table;
}

Result<Table> read_csv_file(const std::string& path, const CsvParams& params) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Error{path, "cannot open file"};
  }
  return read_csv(in, params, path);
}

void write_csv(const Table& table, std::ostream& out, const CsvParams& params) {
  const std::size_t rows = table.num_rows();
  for (std::size_t c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out << params.delimiter;
    write_field(out, table.column_name(c), params.delimiter);
  }
  out << '\n';
  std::ostringstream num;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out << params.delimiter;
      const std::string& name = table.column_name(c);
      if (table.is_numeric(name)) {
        const NumericColumn& col = table.numeric(name);
        if (!col.is_missing(r)) {
          num.str("");
          num << col.values[r];
          out << num.str();
        }
      } else {
        const CategoricalColumn& col = table.categorical(name);
        if (!col.is_missing(r)) {
          write_field(out, col.label(r), params.delimiter);
        }
      }
    }
    out << '\n';
  }
}

Result<bool> write_csv_file(const Table& table, const std::string& path,
                            const CsvParams& params) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Error{path, "cannot open file for writing"};
  }
  write_csv(table, out, params);
  out.flush();
  if (!out) {
    return Error{path, "write failed"};
  }
  return true;
}

}  // namespace gpumine::prep
