#include "prep/csv.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <deque>
#include <fstream>
#include <istream>
#include <limits>
#include <optional>
#include <ostream>
#include <sstream>
#include <string_view>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "common/trace.hpp"

namespace gpumine::prep {
namespace {

// One body record located by the boundary scan: a half-open byte range
// of the slurped text (terminating newline excluded) plus the physical
// line the record starts on.
struct RecordRef {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t line = 1;
};

// Locates record boundaries in one serial pass. RFC-4180 quoting gives
// an exact invariant: scanning left to right, a byte is inside quotes
// iff the number of '"' seen so far is odd (an escaped "" pair toggles
// twice, ending where it started), so a '\n' at even quote parity
// always terminates a record — the same boundaries the per-character
// field state machine produces, including around malformed quoting,
// which split_fields flags per record afterwards.
std::vector<RecordRef> split_records(std::string_view text) {
  std::vector<RecordRef> records;
  bool in_quotes = false;
  std::size_t line = 1;
  std::size_t begin = 0;
  std::size_t begin_line = 1;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '"') {
      in_quotes = !in_quotes;
    } else if (c == '\n') {
      ++line;
      if (!in_quotes) {
        records.push_back({begin, i, begin_line});
        begin = i + 1;
        begin_line = line;
      }
    }
  }
  if (begin < text.size()) {
    // Final record without a trailing newline (or with an unterminated
    // quote swallowing the rest of the input).
    records.push_back({begin, text.size(), begin_line});
  }
  return records;
}

// Splits one record slice into fields — the same state machine as the
// old streaming reader, branch for branch, so quoting quirks (escaped
// "", re-opened quotes, text after a closing quote) classify the same.
void split_fields(std::string_view record, char delimiter,
                  std::vector<std::string>& fields, bool& bad_quoting) {
  fields.clear();
  bad_quoting = false;
  std::string field;
  bool in_quotes = false;
  bool after_quote = false;  // the current field's quoted section closed
  for (std::size_t i = 0; i < record.size(); ++i) {
    const char c = record[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < record.size() && record[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
          after_quote = true;
        }
      } else {
        field.push_back(c);  // embedded delimiters/newlines stay literal
      }
    } else if (c == '"') {
      if (!field.empty() || after_quote) {
        bad_quoting = true;  // quote opening mid-field, or reopening
      }
      in_quotes = true;
    } else if (c == delimiter) {
      fields.push_back(std::move(field));
      field.clear();
      after_quote = false;
    } else if (c == '\r') {
      // swallow; \r\n handled by the record boundary
    } else {
      if (after_quote) {
        bad_quoting = true;  // trailing text after a closing quote
      }
      field.push_back(c);
    }
  }
  if (in_quotes) bad_quoting = true;
  fields.push_back(std::move(field));
}

// Cells and first error of one contiguous run of body records. Cell
// views point into the slurped input text (the common, quote-free
// case) or into this chunk's `arena` (fields that needed unescaping),
// so the bulk of the input is never copied. std::deque keeps arena
// strings address-stable as it grows.
struct ParsedChunk {
  std::vector<std::vector<std::string_view>> cells;  // [column][row-in-chunk]
  std::deque<std::string> arena;
  std::optional<Error> error;
  std::size_t error_record = 0;  // global record index of `error`
};

// Parses records [lo, hi) into per-column cells, stopping at the first
// malformed record. Blank lines (one empty field) are skipped, matching
// the streaming reader. A record with no '"' and no '\r' splits into
// zero-copy slices on the delimiter; anything else goes through the
// full state machine and lands in the chunk arena.
ParsedChunk parse_chunk(std::string_view text,
                        const std::vector<RecordRef>& records, std::size_t lo,
                        std::size_t hi, std::size_t num_columns,
                        char delimiter, std::string_view context) {
  ParsedChunk chunk;
  chunk.cells.resize(num_columns);
  for (auto& column : chunk.cells) column.reserve(hi - lo);
  std::vector<std::string_view> views;
  std::vector<std::string> fields;
  bool bad_quoting = false;
  for (std::size_t r = lo; r < hi; ++r) {
    const RecordRef& rec = records[r];
    const std::string_view record =
        text.substr(rec.begin, rec.end - rec.begin);
    views.clear();
    if (record.find('"') == std::string_view::npos &&
        record.find('\r') == std::string_view::npos) {
      std::size_t start = 0;
      for (std::size_t pos = record.find(delimiter, start);
           pos != std::string_view::npos;
           pos = record.find(delimiter, start)) {
        views.push_back(record.substr(start, pos - start));
        start = pos + 1;
      }
      views.push_back(record.substr(start));
    } else {
      split_fields(record, delimiter, fields, bad_quoting);
      if (bad_quoting) {
        chunk.error =
            Error{std::string(context) + ":" + std::to_string(rec.line),
                  "malformed quoting"};
        chunk.error_record = r;
        return chunk;
      }
      for (std::string& field : fields) {
        chunk.arena.push_back(std::move(field));
        views.emplace_back(chunk.arena.back());
      }
    }
    if (views.size() == 1 && views[0].empty()) continue;  // blank line
    if (views.size() != num_columns) {
      chunk.error = Error{std::string(context) + ":" + std::to_string(rec.line),
                          "expected " + std::to_string(num_columns) +
                              " fields, got " + std::to_string(views.size())};
      chunk.error_record = r;
      return chunk;
    }
    for (std::size_t c = 0; c < views.size(); ++c) {
      chunk.cells[c].push_back(views[c]);
    }
  }
  return chunk;
}

bool parse_double(std::string_view s, double& out) {
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(*begin))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(end[-1]))) {
    --end;
  }
  if (begin == end) return false;
  auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

bool needs_quoting(const std::string& s, char delimiter) {
  return s.find(delimiter) != std::string::npos ||
         s.find('"') != std::string::npos || s.find('\n') != std::string::npos;
}

void write_field(std::ostream& out, const std::string& s, char delimiter) {
  if (!needs_quoting(s, delimiter)) {
    out << s;
    return;
  }
  out << '"';
  for (char c : s) {
    if (c == '"') out << '"';
    out << c;
  }
  out << '"';
}

// Builds one typed column from its raw cells, applying the numeric
// inference rule (numeric iff every non-empty cell parses as a double
// and the column is not forced categorical). Inference and conversion
// are one fused pass: values accumulate until the first non-numeric
// cell proves the column categorical.
Column build_column(const std::vector<std::string_view>& cells, bool forced) {
  if (!forced) {
    NumericColumn col;
    col.values.reserve(cells.size());
    bool numeric = true;
    double tmp = 0.0;
    for (std::string_view cell : cells) {
      if (cell.empty()) {
        col.push_missing();
      } else if (parse_double(cell, tmp)) {
        col.push(tmp);
      } else {
        numeric = false;
        break;
      }
    }
    if (numeric) return col;
  }
  CategoricalColumn col;
  for (std::string_view cell : cells) {
    if (cell.empty()) {
      col.push_missing();
    } else {
      col.push(cell);
    }
  }
  return col;
}

Result<Table> read_csv_text(std::string_view text, const CsvParams& params,
                            std::string_view context) {
  GPUMINE_SPAN("prep/csv_parse");
  const std::vector<RecordRef> records = split_records(text);
  if (records.empty()) {
    return Error{std::string(context), "empty input"};
  }

  // Header is parsed serially — every later decision depends on it.
  std::vector<std::string> header;
  bool bad_quoting = false;
  const RecordRef& head = records.front();
  split_fields(text.substr(head.begin, head.end - head.begin),
               params.delimiter, header, bad_quoting);
  if (bad_quoting) {
    return Error{std::string(context) + ":1", "malformed quoting in header"};
  }
  for (const std::string& name : header) {
    if (name.empty()) {
      return Error{std::string(context) + ":1", "empty column name"};
    }
  }
  if (std::unordered_map<std::string, int> seen;
      std::any_of(header.begin(), header.end(),
                  [&](const std::string& h) { return seen[h]++ > 0; })) {
    return Error{std::string(context) + ":1", "duplicate column name"};
  }

  std::size_t threads = params.num_threads;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }

  // Body records, chunked: each chunk splits fields into its own
  // per-column cell buffers; chunks concatenate in order, so the final
  // cells are identical to a single serial pass.
  const std::size_t num_records = records.size() - 1;
  const std::size_t num_chunks =
      std::max<std::size_t>(1, std::min(num_records, threads * 4));
  std::vector<ParsedChunk> chunks(num_chunks);
  std::optional<ThreadPool> pool;
  if (threads > 1) pool.emplace(threads);
  const auto parse_one = [&](std::size_t i) {
    GPUMINE_SPAN("prep/csv_chunk");
    const std::size_t lo = 1 + num_records * i / num_chunks;
    const std::size_t hi = 1 + num_records * (i + 1) / num_chunks;
    chunks[i] = parse_chunk(text, records, lo, hi, header.size(),
                            params.delimiter, context);
  };
  if (pool) {
    pool->parallel_for(num_chunks, parse_one);
  } else {
    for (std::size_t i = 0; i < num_chunks; ++i) parse_one(i);
  }

  // Earliest failing record wins — exactly the error the serial reader
  // would have stopped on (chunks detect their own errors in order).
  const ParsedChunk* failed = nullptr;
  for (const ParsedChunk& chunk : chunks) {
    if (chunk.error &&
        (failed == nullptr || chunk.error_record < failed->error_record)) {
      failed = &chunk;
    }
  }
  if (failed != nullptr) return *failed->error;

  // Concatenate per-chunk views in chunk order (views stay valid: they
  // point into `text` or into chunk arenas, both alive until return).
  std::vector<std::vector<std::string_view>> cells(header.size());
  for (std::size_t c = 0; c < header.size(); ++c) {
    std::size_t total = 0;
    for (const ParsedChunk& chunk : chunks) total += chunk.cells[c].size();
    cells[c].reserve(total);
    for (const ParsedChunk& chunk : chunks) {
      cells[c].insert(cells[c].end(), chunk.cells[c].begin(),
                      chunk.cells[c].end());
    }
  }

  // Type inference + column construction are independent per column.
  std::vector<Column> columns(header.size());
  const auto build_one = [&](std::size_t c) {
    GPUMINE_SPAN("prep/csv_column");
    const bool forced = std::find(params.force_categorical.begin(),
                                  params.force_categorical.end(),
                                  header[c]) != params.force_categorical.end();
    columns[c] = build_column(cells[c], forced);
  };
  if (pool) {
    pool->parallel_for(header.size(), build_one);
  } else {
    for (std::size_t c = 0; c < header.size(); ++c) build_one(c);
  }

  Table table;
  for (std::size_t c = 0; c < header.size(); ++c) {
    if (std::holds_alternative<NumericColumn>(columns[c])) {
      table.add_numeric(header[c]) =
          std::move(std::get<NumericColumn>(columns[c]));
    } else {
      table.add_categorical(header[c]) =
          std::move(std::get<CategoricalColumn>(columns[c]));
    }
  }
  return table;
}

}  // namespace

Result<Table> read_csv(std::istream& in, const CsvParams& params,
                       std::string_view context) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return read_csv_text(buffer.str(), params, context);
}

Result<Table> read_csv_file(const std::string& path, const CsvParams& params) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return Error{path, "cannot open file"};
  }
  const std::streamsize size = in.tellg();
  std::string text(static_cast<std::size_t>(std::max<std::streamsize>(size, 0)),
                   '\0');
  in.seekg(0);
  if (size > 0 && !in.read(text.data(), size)) {
    return Error{path, "read failed"};
  }
  return read_csv_text(text, params, path);
}

void write_csv(const Table& table, std::ostream& out, const CsvParams& params) {
  const std::size_t rows = table.num_rows();
  for (std::size_t c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out << params.delimiter;
    write_field(out, table.column_name(c), params.delimiter);
  }
  out << '\n';
  std::ostringstream num;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out << params.delimiter;
      const std::string& name = table.column_name(c);
      if (table.is_numeric(name)) {
        const NumericColumn& col = table.numeric(name);
        if (!col.is_missing(r)) {
          num.str("");
          num << col.values[r];
          out << num.str();
        }
      } else {
        const CategoricalColumn& col = table.categorical(name);
        if (!col.is_missing(r)) {
          write_field(out, col.label(r), params.delimiter);
        }
      }
    }
    out << '\n';
  }
}

Result<bool> write_csv_file(const Table& table, const std::string& path,
                            const CsvParams& params) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Error{path, "cannot open file for writing"};
  }
  write_csv(table, out, params);
  out.flush();
  if (!out) {
    return Error{path, "write failed"};
  }
  return true;
}

}  // namespace gpumine::prep
