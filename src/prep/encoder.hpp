// One-hot transaction encoding (paper Sec. III-E).
//
// Turns a fully categorical Table into a core::TransactionDb: each row
// becomes a transaction containing one "column = label" item per
// non-missing cell. Items whose support exceeds `dominance_threshold`
// (paper: 80%) are dropped before encoding — near-universal items only
// generate uninteresting rules.
#pragma once

#include <string>
#include <vector>

#include "core/item_catalog.hpp"
#include "core/transaction_db.hpp"
#include "prep/table.hpp"

namespace gpumine::prep {

struct EncoderParams {
  /// Drop items present in more than this fraction of rows. Paper: 0.8.
  /// Set >= 1 to keep everything.
  double dominance_threshold = 0.8;
  /// Columns whose item names should be the bare label (e.g. framework
  /// "Tensorflow", status "Failed") rather than "column = label".
  std::vector<std::string> bare_label_columns;
  /// Worker threads for the counting pass (per column) and the row
  /// encoding pass (per row chunk). 0 = hardware concurrency, 1 = fully
  /// serial. The encoded database is identical for any value.
  std::size_t num_threads = 1;

  void validate() const;
};

struct EncodeResult {
  core::TransactionDb db;
  core::ItemCatalog catalog;
  /// Item names removed by the dominance filter, for reporting.
  std::vector<std::string> dropped_items;
};

/// Encodes every categorical column of `table`. Numeric columns trigger
/// std::invalid_argument — bin them first (prep::bin_column).
[[nodiscard]] EncodeResult encode(const Table& table,
                                  const EncoderParams& params);

}  // namespace gpumine::prep
