// Discretization of continuous features (paper Sec. III-E).
//
// The paper uses equal-frequency binning into quartiles:
//   Bin1 [min, p25)   Bin2 [p25, median)   Bin3 [median, p75)
//   Bin4 [p75, max]
// with two datacenter-specific refinements observed in the case studies:
//   * a dedicated bin for exact zeros when a large mass of jobs measures
//     exactly 0 (e.g. "SM Util = 0%", 46% of PAI jobs);
//   * a dedicated "Std" bin when one exact value dominates a *request*
//     column (e.g. ~50% of PAI jobs request the standard 600 CPU cores).
// Equal-width binning is provided as the ablation baseline the paper
// rejects (long-tailed features leave upper bins empty).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "prep/table.hpp"

namespace gpumine::prep {

struct BinningParams {
  /// Number of equal-frequency (or equal-width) bins. Paper: 4.
  int num_bins = 4;
  /// Create a dedicated zero bin when at least this fraction of the
  /// non-missing values are exactly 0. Set > 1 to disable.
  double zero_mass_threshold = 0.25;
  /// Create a dedicated spike ("Std") bin when a single non-zero exact
  /// value holds at least this fraction of the non-missing values.
  /// Set > 1 to disable.
  double spike_mass_threshold = 0.40;
  /// Equal-width instead of equal-frequency edges (ablation baseline).
  bool equal_width = false;
  /// Label of the zero bin ("0%" for utilizations, "0GB" for memory...).
  std::string zero_label = "0%";
  /// Label of the spike bin.
  std::string spike_label = "Std";
  /// Prefix of interval labels: "Bin" -> Bin1..Bin4.
  std::string bin_prefix = "Bin";

  void validate() const;
};

/// A fitted discretization: apply with `label_for`.
struct BinSpec {
  bool has_zero_bin = false;
  std::optional<double> spike_value;  // exact match -> spike label
  /// Interior edges, ascending; labels.size() == edges.size() + 1.
  std::vector<double> edges;
  std::vector<std::string> labels;
  std::string zero_label;
  std::string spike_label;

  /// Label for a value; nullopt for NaN (missing). Intervals are
  /// left-closed, right-open except the last (closed), matching the
  /// paper's quartile convention.
  [[nodiscard]] std::optional<std::string> label_for(double v) const;

  /// Total number of distinct labels this spec can emit.
  [[nodiscard]] std::size_t num_bins() const;
};

/// Fits a discretization over `values` (NaNs skipped). Degenerate inputs
/// collapse gracefully: constant columns yield a single bin; heavy ties
/// merge duplicate quantile edges and renumber the surviving bins.
[[nodiscard]] BinSpec fit_bins(std::span<const double> values,
                               const BinningParams& params);

/// Applies a fitted spec row-wise, producing a categorical column.
[[nodiscard]] CategoricalColumn apply_bins(const NumericColumn& column,
                                           const BinSpec& spec);

/// Convenience: fit + apply + replace the column inside `table`.
/// Returns the spec used (for reports and tests).
BinSpec bin_column(Table& table, std::string_view name,
                   const BinningParams& params);

}  // namespace gpumine::prep
