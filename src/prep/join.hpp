// Feature merging across collection levels (paper Sec. III-E).
//
// Scheduler-level features (user, runtime, exit status) and node-level
// measurements (CPU/GPU utilization) arrive in separate files keyed by
// job id; rule mining needs them in one table. `left_join` matches each
// left row to the first right row with the same key and copies the right
// table's other columns across (missing where unmatched).
#pragma once

#include <string_view>

#include "prep/table.hpp"

namespace gpumine::prep {

/// Left join on a categorical key column present in both tables. Right
/// keys must be unique (duplicate right keys throw — a trace with two
/// measurement rows per job indicates an upstream aggregation bug).
/// Columns of `right` other than the key are appended to the result;
/// a right column whose name collides with a left column gets a
/// "<name>_right" suffix.
[[nodiscard]] Table left_join(const Table& left, const Table& right,
                              std::string_view key);

}  // namespace gpumine::prep
