// Columnar job-feature table — the merged "single file" of Sec. III-E.
//
// A Table holds one row per job and a named, typed column per feature.
// Numeric columns use NaN for missing values; categorical columns use
// interned label codes with -1 for missing. The preprocessing pipeline
// transforms numeric columns into categorical ones (binning), rewrites
// categorical columns (share grouping, category merging), and finally
// one-hot encodes everything into a core::TransactionDb.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <variant>
#include <vector>

namespace gpumine::prep {

/// Numeric feature column. Missing = NaN.
struct NumericColumn {
  std::vector<double> values;

  [[nodiscard]] std::size_t size() const { return values.size(); }
  void push(double v) { values.push_back(v); }
  void push_missing();
  [[nodiscard]] bool is_missing(std::size_t row) const;
};

/// Categorical feature column with interned labels. Missing = code -1.
class CategoricalColumn {
 public:
  static constexpr std::int32_t kMissing = -1;

  /// Interns `label` and appends its code.
  void push(std::string_view label);
  void push_missing() { codes_.push_back(kMissing); }
  /// Appends an already-interned code (must be valid or kMissing).
  void push_code(std::int32_t code);

  /// Code for `label`, interning it if new.
  std::int32_t intern(std::string_view label);
  /// Code for `label` if present.
  [[nodiscard]] std::optional<std::int32_t> find(std::string_view label) const;

  [[nodiscard]] std::size_t size() const { return codes_.size(); }
  [[nodiscard]] std::int32_t code(std::size_t row) const { return codes_[row]; }
  [[nodiscard]] bool is_missing(std::size_t row) const {
    return codes_[row] == kMissing;
  }
  /// Label for a row; throws for missing rows — check is_missing first.
  [[nodiscard]] const std::string& label(std::size_t row) const;
  [[nodiscard]] const std::string& label_of_code(std::int32_t code) const;
  [[nodiscard]] std::size_t num_labels() const { return labels_.size(); }

  /// Count of rows per label code (missing rows excluded).
  [[nodiscard]] std::vector<std::uint64_t> value_counts() const;

 private:
  std::vector<std::int32_t> codes_;
  std::vector<std::string> labels_;
  std::unordered_map<std::string, std::int32_t> index_;
};

using Column = std::variant<NumericColumn, CategoricalColumn>;

class Table {
 public:
  /// Adds an empty column; name must be unique. The returned reference
  /// stays valid across further add_* calls (columns live in a deque);
  /// replace_column and drop_column invalidate it.
  NumericColumn& add_numeric(std::string name);
  CategoricalColumn& add_categorical(std::string name);

  [[nodiscard]] bool has_column(std::string_view name) const;
  [[nodiscard]] std::size_t num_columns() const { return columns_.size(); }
  [[nodiscard]] const std::string& column_name(std::size_t i) const {
    return names_[i];
  }

  [[nodiscard]] const Column& column(std::string_view name) const;
  [[nodiscard]] Column& column(std::string_view name);
  [[nodiscard]] const NumericColumn& numeric(std::string_view name) const;
  [[nodiscard]] const CategoricalColumn& categorical(std::string_view name) const;
  [[nodiscard]] bool is_numeric(std::string_view name) const;

  /// Replaces an existing column (may change its type); size must match
  /// the replaced column's size.
  void replace_column(std::string_view name, Column column);
  void drop_column(std::string_view name);

  /// Number of rows. Throws std::logic_error if columns disagree —
  /// call after finishing a batch of pushes.
  [[nodiscard]] std::size_t num_rows() const;

  /// Row-subset copy: keeps rows where `keep[row]` is true.
  [[nodiscard]] Table filter_rows(const std::vector<bool>& keep) const;

 private:
  [[nodiscard]] std::size_t index_of(std::string_view name) const;

  std::vector<std::string> names_;
  std::deque<Column> columns_;
  std::unordered_map<std::string, std::size_t> index_;
};

}  // namespace gpumine::prep
