// Categorical aggregation (paper Sec. III-E, last paragraph).
//
// High-cardinality categorical features (user id, job group, model name)
// have many low-support values. Two reductions are provided:
//   * share grouping — sort values by submission count; the most active
//     values covering `top_share` of rows become one label ("Freq User"),
//     the least active values covering `bottom_share` become another
//     ("New User"), everything else a third;
//   * category merging — an explicit rename map, e.g. resnet/vgg/
//     inception -> "CV", bert/nmt/xlnet -> "NLP".
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>

#include "prep/table.hpp"

namespace gpumine::prep {

struct ShareGroupingParams {
  /// Cumulative row share assigned to the most active labels. Paper: 0.25.
  double top_share = 0.25;
  /// Cumulative row share assigned to the least active labels.
  double bottom_share = 0.25;
  std::string top_label = "Freq";
  std::string middle_label = "Regular";
  std::string bottom_label = "New";

  void validate() const;
};

/// Returns a column where each row's label is replaced by its activity
/// group. Values are ranked by count (descending; ties broken by label
/// for determinism); the top ranks are greedily assigned to `top_label`
/// until they cover at least `top_share` of the rows, the bottom ranks to
/// `bottom_label` likewise (top assignment wins if they would overlap).
/// Missing rows stay missing.
[[nodiscard]] CategoricalColumn group_by_share(const CategoricalColumn& column,
                                               const ShareGroupingParams& params);

/// Returns a column with labels renamed through `mapping`; labels absent
/// from the map keep their value (or become `fallback` when provided
/// non-empty). Missing rows stay missing.
[[nodiscard]] CategoricalColumn merge_categories(
    const CategoricalColumn& column,
    const std::unordered_map<std::string, std::string>& mapping,
    std::string_view fallback = "");

/// In-place convenience wrappers operating on a table column.
void group_column_by_share(Table& table, std::string_view name,
                           const ShareGroupingParams& params);
void merge_column_categories(
    Table& table, std::string_view name,
    const std::unordered_map<std::string, std::string>& mapping,
    std::string_view fallback = "");

}  // namespace gpumine::prep
