#include "cli/commands.hpp"

#include "analysis/compare.hpp"
#include "analysis/drilldown.hpp"
#include "analysis/summarize.hpp"
#include "core/negative.hpp"
#include "core/significance.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <fstream>
#include <memory>
#include <ostream>
#include <sstream>
#include <thread>

#include "analysis/report.hpp"
#include "analysis/workflow.hpp"
#include "cli/args.hpp"
#include "common/flight.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "analysis/classifier.hpp"
#include "analysis/export.hpp"
#include "core/closed.hpp"
#include "core/metrics_export.hpp"
#include "core/serialize.hpp"
#include "core/snapshot.hpp"
#include "prep/csv.hpp"
#include "serve/handler.hpp"
#include "serve/query_engine.hpp"
#include "serve/server.hpp"
#include "trace/rng.hpp"
#include "synth/pai.hpp"
#include "synth/philly.hpp"
#include "synth/supercloud.hpp"

namespace gpumine::cli {
namespace {

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::string token;
  std::istringstream stream(csv);
  while (std::getline(stream, token, ',')) {
    if (!token.empty()) out.push_back(token);
  }
  return out;
}

// Reports unknown flags; returns false (and sets the exit path) on any.
bool reject_unused(const Args& args, std::ostream& err) {
  const auto unused = args.unused();
  for (const auto& name : unused) {
    err << "unknown flag --" << name << "\n";
  }
  return unused.empty();
}

// Shared CSV -> WorkflowConfig assembly for `itemsets` and `mine`.
struct LoadedTrace {
  prep::Table table;
  analysis::WorkflowConfig config;
  double csv_seconds = 0.0;  // CSV parse wall time, for --stats
};

Result<LoadedTrace> load_trace(const Args& args) {
  const auto path = args.get("csv");
  if (!path.has_value() || path->empty()) {
    return Error{"--csv", "required: path to the trace CSV"};
  }
  // Flags first: --threads drives the CSV parser's chunking too.
  const auto min_support = args.get_double("min-support", 0.05);
  if (!min_support.ok()) return min_support.error();
  const auto max_length = args.get_uint("max-length", 5);
  if (!max_length.ok()) return max_length.error();
  const auto threads = args.get_uint("threads", 1);
  if (!threads.ok()) return threads.error();
  const auto min_lift = args.get_double("min-lift", 1.5);
  if (!min_lift.ok()) return min_lift.error();
  const auto c_lift = args.get_double("c-lift", 1.5);
  if (!c_lift.ok()) return c_lift.error();
  const auto c_supp = args.get_double("c-supp", 1.5);
  if (!c_supp.ok()) return c_supp.error();

  prep::CsvParams csv;
  csv.force_categorical = split_list(args.get_or("categorical", "job_id"));
  csv.num_threads = static_cast<std::size_t>(threads.value());
  const auto csv_begin = std::chrono::steady_clock::now();
  auto parsed = prep::read_csv_file(*path, csv);
  if (!parsed.ok()) return parsed.error();

  LoadedTrace loaded{std::move(parsed).value(), {}, 0.0};
  loaded.csv_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - csv_begin)
                           .count();
  analysis::WorkflowConfig& config = loaded.config;

  config.mining.min_support = min_support.value();
  config.mining.max_length = static_cast<std::size_t>(max_length.value());
  config.mining.num_threads = static_cast<std::size_t>(threads.value());
  // Rule generation and the prep stages share the mining worker count.
  config.rules.num_threads = config.mining.num_threads;
  config.prep_threads = config.mining.num_threads;
  config.rules.min_lift = min_lift.value();
  config.pruning.c_lift = c_lift.value();
  config.pruning.c_supp = c_supp.value();

  const std::string algorithm = args.get_or("algorithm", "fpgrowth");
  if (algorithm == "fpgrowth") {
    config.algorithm = core::Algorithm::kFpGrowth;
  } else if (algorithm == "apriori") {
    config.algorithm = core::Algorithm::kApriori;
  } else if (algorithm == "eclat") {
    config.algorithm = core::Algorithm::kEclat;
  } else {
    return Error{"--algorithm", "unknown algorithm '" + algorithm + "'"};
  }

  const std::string engine = args.get_or("engine", "direct");
  if (engine == "direct") {
    config.engine = analysis::MiningEngine::kDirect;
  } else if (engine == "son") {
    config.engine = analysis::MiningEngine::kSon;
  } else {
    return Error{"--engine", "unknown engine '" + engine +
                                 "' (must be direct or son)"};
  }
  const auto partitions = args.get_uint("partitions", 4);
  if (!partitions.ok()) return partitions.error();
  if (partitions.value() == 0) {
    return Error{"--partitions", "must be >= 1"};
  }
  config.num_partitions = static_cast<std::size_t>(partitions.value());

  config.drop_columns = split_list(args.get_or("drop", "job_id"));
  config.encoder.bare_label_columns = split_list(args.get_or("bare", ""));
  for (const std::string& column : split_list(args.get_or("group", ""))) {
    prep::ShareGroupingParams grouping;
    grouping.top_label = "Freq " + column;
    grouping.middle_label = "Regular " + column;
    grouping.bottom_label = "New " + column;
    config.groupings.push_back({column, grouping});
  }

  // Default: bin every numeric column with paper-style parameters.
  for (std::size_t c = 0; c < loaded.table.num_columns(); ++c) {
    const std::string& name = loaded.table.column_name(c);
    if (loaded.table.is_numeric(name)) {
      config.binnings.push_back({name, prep::BinningParams{}});
    }
  }
  return loaded;
}

// RAII wiring for `--trace FILE`: arms the process tracer for the span
// of one command. finish() exports the Chrome trace-event file, runs the
// exporter's self-check on what it just wrote, and reports the span
// count; it returns false (after printing why) if either step fails.
class TraceSession {
 public:
  TraceSession(const Args& args, std::ostream& err)
      : path_(args.get_or("trace", "")), err_(err) {
    if (!path_.empty()) {
      Tracer::instance().reset();
      Tracer::instance().enable();
    }
  }

  [[nodiscard]] bool active() const { return !path_.empty(); }

  bool finish(std::ostream& out) {
    if (path_.empty()) return true;
    Tracer& tracer = Tracer::instance();
    tracer.disable();
    const auto written = tracer.export_chrome_trace_file(path_);
    if (!written.ok()) {
      err_ << written.error().to_string() << "\n";
      return false;
    }
    const auto checked = validate_chrome_trace_file(path_);
    if (!checked.ok()) {
      err_ << "trace self-check failed: " << checked.error().to_string()
           << "\n";
      return false;
    }
    out << "wrote trace: " << checked.value() << " spans to " << path_
        << "\n";
    return true;
  }

 private:
  std::string path_;
  std::ostream& err_;
};

// Shared wiring for `--log-level LEVEL` and `--log-file FILE` on the
// long-running commands. Returns false (after printing why) on a bad
// level name or an unwritable file.
bool configure_logging(const Args& args, std::ostream& err) {
  if (const auto level = args.get("log-level"); level.has_value()) {
    const auto parsed = parse_log_level(*level);
    if (!parsed.ok()) {
      err << parsed.error().to_string() << "\n";
      return false;
    }
    Logger::instance().set_level(parsed.value());
  }
  if (const auto path = args.get("log-file");
      path.has_value() && !path->empty()) {
    const auto opened = Logger::instance().open_file(*path);
    if (!opened.ok()) {
      err << opened.error().to_string() << "\n";
      return false;
    }
  }
  return true;
}

// RAII wiring for `--flight-dump FILE`: arms the flight recorder's
// crash handler for the span of one command. On a clean exit the
// destructor writes an ordinary dump to the same path (so the file is
// always a loadable trace bundle, crash or not) and disarms, keeping
// in-process callers (tests) free of leftover signal handlers.
class FlightDumpSession {
 public:
  FlightDumpSession() = default;
  ~FlightDumpSession() {
    if (path_.empty()) return;
    FlightRecorder& recorder = FlightRecorder::instance();
    (void)recorder.dump_file(path_);
    recorder.disarm_crash_dump();
  }

  bool arm(const Args& args, std::ostream& err) {
    const std::string path = args.get_or("flight-dump", "");
    if (path.empty()) return true;
    const auto armed = FlightRecorder::instance().arm_crash_dump(path);
    if (!armed.ok()) {
      err << armed.error().to_string() << "\n";
      return false;
    }
    path_ = path;
    return true;
  }

 private:
  std::string path_;
};

// Splices the name-sorted span summary into a metrics JSON object, so
// `--stats-json` files carry a `trace_spans` key (an empty array when
// the run was not traced).
std::string with_trace_spans(std::string metrics_json) {
  GPUMINE_ENSURE(!metrics_json.empty() && metrics_json.back() == '}',
                 "metrics JSON must be an object");
  metrics_json.pop_back();
  metrics_json +=
      ",\"trace_spans\":" + Tracer::instance().summary_json() + "}";
  return metrics_json;
}

bool write_text_file(const std::string& path, const std::string& text,
                     std::ostream& err) {
  std::ofstream file(path, std::ios::binary);
  file << text << "\n";
  file.flush();
  if (!file) {
    err << path << ": cannot write file\n";
    return false;
  }
  return true;
}

// Writes a Prometheus exposition document for `--metrics-out`, running
// the in-repo lint on it first so a malformed export fails loudly at
// the producer instead of at the scraper.
bool write_metrics_file(const std::string& path, const std::string& text,
                        std::ostream& out, std::ostream& err) {
  const auto checked = validate_prometheus_text(text);
  if (!checked.ok()) {
    err << "metrics self-check failed: " << checked.error().to_string()
        << "\n";
    return false;
  }
  if (!write_text_file(path, text, err)) return false;
  out << "wrote metrics: " << checked.value() << " series to " << path
      << "\n";
  return true;
}

// SIGINT/SIGTERM flag for `gpumine serve` (async-signal-safe type).
volatile std::sig_atomic_t g_serve_stop = 0;
extern "C" void handle_serve_signal(int) { g_serve_stop = 1; }

// Percent-encodes everything outside the unreserved set, so item names
// with spaces, '%', '&' or '=' survive the query-string round trip.
std::string percent_encode(const std::string& text) {
  static const char* hex = "0123456789ABCDEF";
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    const bool unreserved = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                            (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                            c == '.' || c == '~';
    if (unreserved) {
      out += c;
    } else {
      const auto byte = static_cast<unsigned char>(c);
      out += '%';
      out += hex[byte >> 4];
      out += hex[byte & 0xF];
    }
  }
  return out;
}

}  // namespace

int run_help(std::ostream& out) {
  out << "gpumine - interpretable GPU-cluster trace analysis via "
         "association rule mining\n\n"
         "usage:\n"
         "  gpumine synth --trace pai|supercloud|philly [--jobs N] "
         "[--seed S] --out trace.csv\n"
         "  gpumine itemsets --csv trace.csv [--min-support F] "
         "[--max-length K] [--algorithm A] [--top N] [--save FILE] [--family all|closed|maximal]\n"
         "                   [--engine direct|son] [--partitions N] "
         "[--threads N] [--stats]\n"
         "  gpumine mine (--csv trace.csv | --load FILE) --keyword ITEM "
         "[--min-support F] [--min-lift F]\n"
         "               [--c-lift F] [--c-supp F] [--bare col,..] "
         "[--group col,..] [--drop col,..]\n"
         "               [--format table|csv|json|md] [--max-rows N] "
         "[--engine direct|son] [--partitions N] [--threads N] [--stats]\n"
         "               [--trace FILE] [--stats-json FILE] [--metrics-out "
         "FILE] [--flight-dump FILE]\n"
         "               [--log-level debug|info|warn|error|off] "
         "[--log-file FILE]\n"
         "  gpumine predict --csv trace.csv --target ITEM [--holdout F] "
         "[--min-confidence F] [--seed N]\n"
         "  gpumine report --csv trace.csv [--principal COL] [--runtime "
         "COL] [--sm-util COL]\n"
         "                 [--status COL] [--gpus COL] "
         "[--sort idle|failed|hours|rate] [--top N]\n"
         "  gpumine digest --csv trace.csv --keyword ITEM [--max-rules N] "
         "[--fdr Q] [--negative-confidence F]\n"
         "  gpumine compare --a x.itemsets --b y.itemsets --keyword ITEM "
         "[--min-lift F]\n"
         "  gpumine snapshot (--csv trace.csv | --from-itemsets FILE) "
         "--out FILE [+ mine flags]\n"
         "  gpumine serve --snapshot FILE [--host H] [--port P] "
         "[--threads N] [--check]\n"
         "                [--trace FILE] [--stats-json FILE] [--metrics-out "
         "FILE] [--flight-dump FILE]\n"
         "                [--slow-query-ms N] [--log-level "
         "debug|info|warn|error|off] [--log-file FILE]\n"
         "  gpumine query [--host H] [--port P] (--keyword ITEM | "
         "--items A,B | --stats | --reload | --health) [--trace FILE]\n"
         "  gpumine trace-check --file trace.json\n"
         "  gpumine metrics-check --file metrics.prom\n"
         "  gpumine help\n";
  return 0;
}

int run_synth(const std::vector<std::string>& args_raw, std::ostream& out,
              std::ostream& err) {
  auto parsed = Args::parse(args_raw);
  if (!parsed.ok()) {
    err << parsed.error().to_string() << "\n";
    return 2;
  }
  const Args& args = parsed.value();
  const std::string which = args.get_or("trace", "");
  const auto jobs = args.get_uint("jobs", 20000);
  const auto seed = args.get_uint("seed", 42);
  const std::string path = args.get_or("out", "");
  if (!jobs.ok() || !seed.ok()) {
    err << (!jobs.ok() ? jobs.error() : seed.error()).to_string() << "\n";
    return 2;
  }
  if (path.empty()) {
    err << "--out is required\n";
    return 2;
  }
  if (!reject_unused(args, err)) return 2;

  prep::Table table;
  if (which == "pai") {
    synth::PaiConfig config;
    config.num_jobs = jobs.value();
    config.seed = seed.value();
    table = synth::generate_pai(config).merged();
  } else if (which == "supercloud") {
    synth::SuperCloudConfig config;
    config.num_jobs = jobs.value();
    config.seed = seed.value();
    table = synth::generate_supercloud(config).merged();
  } else if (which == "philly") {
    synth::PhillyConfig config;
    config.num_jobs = jobs.value();
    config.seed = seed.value();
    table = synth::generate_philly(config).merged();
  } else {
    err << "--trace must be pai, supercloud or philly\n";
    return 2;
  }
  const auto written = prep::write_csv_file(table, path);
  if (!written.ok()) {
    err << written.error().to_string() << "\n";
    return 1;
  }
  out << "wrote " << table.num_rows() << " jobs x " << table.num_columns()
      << " features to " << path << "\n";
  return 0;
}

int run_itemsets(const std::vector<std::string>& args_raw, std::ostream& out,
                 std::ostream& err) {
  auto parsed = Args::parse(args_raw);
  if (!parsed.ok()) {
    err << parsed.error().to_string() << "\n";
    return 2;
  }
  const Args& args = parsed.value();
  const auto top = args.get_uint("top", 25);
  const std::string save_path = args.get_or("save", "");
  const std::string family = args.get_or("family", "all");
  const bool stats = args.has("stats");
  auto loaded = load_trace(args);
  if (!top.ok() || !loaded.ok()) {
    err << (!top.ok() ? top.error() : loaded.error()).to_string() << "\n";
    return 2;
  }
  if (family != "all" && family != "closed" && family != "maximal") {
    err << "--family must be all, closed or maximal\n";
    return 2;
  }
  if (!reject_unused(args, err)) return 2;

  LoadedTrace trace = std::move(loaded).value();
  auto mined = analysis::mine(std::move(trace.table), trace.config);
  mined.mined.metrics.prep_stage.csv_seconds = trace.csv_seconds;
  if (stats) out << mined.mined.metrics.summary();
  if (family == "closed") {
    mined.mined.itemsets = core::closed_itemsets(mined.mined);
  } else if (family == "maximal") {
    mined.mined.itemsets = core::maximal_itemsets(mined.mined);
  }
  if (!save_path.empty()) {
    const auto saved = core::save_mining_result_file(
        mined.mined, mined.prepared.catalog, save_path);
    if (!saved.ok()) {
      err << saved.error().to_string() << "\n";
      return 1;
    }
    out << "saved itemsets to " << save_path << "\n";
  }
  out << mined.mined.itemsets.size() << " frequent itemsets over "
      << mined.prepared.catalog.size() << " items\n";
  // Largest-support first for the "top" listing.
  auto itemsets = mined.mined.itemsets;
  std::sort(itemsets.begin(), itemsets.end(),
            [](const core::FrequentItemset& a, const core::FrequentItemset& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.items < b.items;
            });
  const std::size_t n =
      std::min<std::size_t>(itemsets.size(), top.value());
  for (std::size_t i = 0; i < n; ++i) {
    out << "  [" << itemsets[i].count << "] "
        << mined.prepared.catalog.render(itemsets[i].items) << "\n";
  }
  return 0;
}

int run_mine(const std::vector<std::string>& args_raw, std::ostream& out,
             std::ostream& err) {
  auto parsed = Args::parse(args_raw);
  if (!parsed.ok()) {
    err << parsed.error().to_string() << "\n";
    return 2;
  }
  const Args& args = parsed.value();
  const std::string keyword = args.get_or("keyword", "");
  const std::string format = args.get_or("format", "table");
  const bool stats = args.has("stats");
  const std::string stats_json_path = args.get_or("stats-json", "");
  const std::string metrics_out_path = args.get_or("metrics-out", "");
  if (!configure_logging(args, err)) return 2;
  FlightDumpSession flight;
  if (!flight.arm(args, err)) return 2;
  TraceSession session(args, err);
  const auto max_rows = args.get_uint("max-rows", 10);
  if (!max_rows.ok()) {
    err << max_rows.error().to_string() << "\n";
    return 2;
  }
  if (keyword.empty()) {
    err << "--keyword is required (an item name, e.g. 'Failed')\n";
    return 2;
  }

  // Mining input: either a raw CSV (mined now) or a saved itemset file
  // (from `itemsets --save`).
  core::MiningResult result;
  core::ItemCatalog catalog;
  analysis::WorkflowConfig config;
  if (const auto load_path = args.get("load"); load_path.has_value()) {
    auto loaded = core::load_mining_result_file(*load_path);
    if (!loaded.ok()) {
      err << loaded.error().to_string() << "\n";
      return 2;
    }
    // Rule/pruning thresholds still apply when replaying saved itemsets.
    const auto min_lift = args.get_double("min-lift", 1.5);
    const auto c_lift = args.get_double("c-lift", 1.5);
    const auto c_supp = args.get_double("c-supp", 1.5);
    const auto threads = args.get_uint("threads", 1);
    if (!min_lift.ok() || !c_lift.ok() || !c_supp.ok() || !threads.ok()) {
      err << (!min_lift.ok() ? min_lift.error()
              : !c_lift.ok() ? c_lift.error()
              : !c_supp.ok() ? c_supp.error()
                             : threads.error())
                 .to_string()
          << "\n";
      return 2;
    }
    config.rules.min_lift = min_lift.value();
    config.rules.num_threads = static_cast<std::size_t>(threads.value());
    config.pruning.c_lift = c_lift.value();
    config.pruning.c_supp = c_supp.value();
    core::LoadedMiningResult archive = std::move(loaded).value();
    result = std::move(archive.result);
    catalog = std::move(archive.catalog);
    if (!reject_unused(args, err)) return 2;
    if (stats) {
      out << "no mining stats: --load replays saved itemsets without "
             "mining\n";
    }
  } else {
    auto loaded = load_trace(args);
    if (!loaded.ok()) {
      err << loaded.error().to_string() << "\n";
      return 2;
    }
    if (!reject_unused(args, err)) return 2;
    LoadedTrace trace = std::move(loaded).value();
    config = trace.config;
    auto mined = analysis::mine(std::move(trace.table), config);
    result = std::move(mined.mined);
    result.metrics.prep_stage.csv_seconds = trace.csv_seconds;
    catalog = std::move(mined.prepared.catalog);
    if (stats) out << result.metrics.summary();
  }

  const auto keyword_id = catalog.find(keyword);
  if (!keyword_id) {
    err << "keyword '" << keyword << "' is not an encoded item\n";
    return 1;
  }
  const auto analysis = core::analyze_keyword(result, *keyword_id,
                                              config.rules, config.pruning);
  if (stats) out << analysis.stage.summary();
  if (stats && session.active()) {
    out << "trace spans (per name, sorted):\n"
        << Tracer::instance().summary_table();
  }
  result.metrics.rule_stage = analysis.stage;
  if (!stats_json_path.empty()) {
    if (!write_text_file(stats_json_path,
                         with_trace_spans(result.metrics.to_json()), err)) {
      return 1;
    }
  }
  if (!metrics_out_path.empty()) {
    if (!write_metrics_file(metrics_out_path,
                            core::render_prometheus(result.metrics), out,
                            err)) {
      return 1;
    }
  }
  if (format == "table") {
    analysis::RuleTableOptions options;
    options.max_cause = max_rows.value();
    options.max_characteristic = max_rows.value();
    out << analysis::render_rule_table(analysis, catalog, options);
  } else if (format == "csv") {
    out << analysis::rules_to_csv(analysis, catalog);
  } else if (format == "json") {
    out << analysis::rules_to_json(analysis, catalog) << "\n";
  } else if (format == "md") {
    out << analysis::rules_to_markdown(analysis, catalog, max_rows.value());
  } else {
    err << "--format must be table, csv, json or md\n";
    return 2;
  }
  return session.finish(out) ? 0 : 1;
}

int run_predict(const std::vector<std::string>& args_raw, std::ostream& out,
                std::ostream& err) {
  auto parsed = Args::parse(args_raw);
  if (!parsed.ok()) {
    err << parsed.error().to_string() << "\n";
    return 2;
  }
  const Args& args = parsed.value();
  const std::string target = args.get_or("target", "");
  const auto holdout = args.get_double("holdout", 0.3);
  const auto min_confidence = args.get_double("min-confidence", 0.7);
  const auto seed = args.get_uint("seed", 1);
  auto loaded = load_trace(args);
  if (!holdout.ok() || !min_confidence.ok() || !seed.ok() || !loaded.ok()) {
    const Error& e = !holdout.ok()          ? holdout.error()
                     : !min_confidence.ok() ? min_confidence.error()
                     : !seed.ok()           ? seed.error()
                                            : loaded.error();
    err << e.to_string() << "\n";
    return 2;
  }
  if (target.empty()) {
    err << "--target is required (the item to predict, e.g. 'Failed')\n";
    return 2;
  }
  if (holdout.value() <= 0.0 || holdout.value() >= 1.0) {
    err << "--holdout must be in (0, 1)\n";
    return 2;
  }
  if (!reject_unused(args, err)) return 2;

  LoadedTrace trace = std::move(loaded).value();
  const auto& config = trace.config;

  // Deterministic random holdout split.
  trace::Rng rng(seed.value());
  const std::size_t rows = trace.table.num_rows();
  std::vector<bool> is_train(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    is_train[r] = !rng.bernoulli(holdout.value());
  }
  std::vector<bool> is_test = is_train;
  is_test.flip();

  auto train = analysis::mine(trace.table.filter_rows(is_train), config);
  const auto target_id = train.prepared.catalog.find(target);
  if (!target_id) {
    err << "target '" << target << "' is not an encoded item\n";
    return 1;
  }
  const auto rules = core::generate_rules(train.mined, config.rules);
  const auto cause =
      core::filter_keyword(rules, *target_id, core::KeywordSide::kConsequent);
  analysis::ClassifierParams clf_params;
  clf_params.min_confidence = min_confidence.value();
  const analysis::RuleClassifier classifier(cause, *target_id, clf_params);

  // Encode the held-out rows and remap them into the training vocabulary.
  auto test = analysis::prepare(trace.table.filter_rows(is_test), config);
  core::TransactionDb remapped;
  for (std::size_t t = 0; t < test.db.size(); ++t) {
    core::Itemset txn;
    for (core::ItemId id : test.db[t]) {
      if (const auto mapped =
              train.prepared.catalog.find(test.catalog.name(id))) {
        txn.push_back(*mapped);
      }
    }
    remapped.add(std::move(txn));
  }
  const analysis::Evaluation eval = analysis::evaluate(classifier, remapped);

  out << "train rows: " << train.prepared.db.size()
      << ", test rows: " << remapped.size()
      << ", classifier rules: " << classifier.rules().size() << "\n";
  out << "accuracy=" << eval.accuracy() << " precision=" << eval.precision()
      << " recall=" << eval.recall() << " f1=" << eval.f1() << "\n";
  const std::size_t top =
      std::min<std::size_t>(classifier.rules().size(), 5);
  for (std::size_t i = 0; i < top; ++i) {
    out << "  rule[" << i << "] "
        << analysis::render_rule(classifier.rules()[i],
                                 train.prepared.catalog)
        << "\n";
  }
  return 0;
}

int run_report(const std::vector<std::string>& args_raw, std::ostream& out,
               std::ostream& err) {
  auto parsed = Args::parse(args_raw);
  if (!parsed.ok()) {
    err << parsed.error().to_string() << "\n";
    return 2;
  }
  const Args& args = parsed.value();
  const auto csv_path = args.get("csv");
  if (!csv_path.has_value() || csv_path->empty()) {
    err << "--csv is required\n";
    return 2;
  }
  analysis::TableDrilldownSpec spec;
  spec.principal_column = args.get_or("principal", "User");
  spec.runtime_column = args.get_or("runtime", "Runtime");
  spec.gpus_column = args.get_or("gpus", "");
  spec.sm_util_column = args.get_or("sm-util", "SM Util");
  spec.status_column = args.get_or("status", "Status");
  spec.failed_label = args.get_or("failed-label", "Failed");
  spec.killed_label = args.get_or("killed-label", "Killed");

  analysis::DrilldownParams params;
  const auto top = args.get_uint("top", 10);
  if (!top.ok()) {
    err << top.error().to_string() << "\n";
    return 2;
  }
  params.top_k = top.value();
  const std::string sort = args.get_or("sort", "idle");
  if (sort == "idle") {
    params.sort = analysis::DrilldownSort::kIdleGpuHours;
  } else if (sort == "failed") {
    params.sort = analysis::DrilldownSort::kFailedGpuHours;
  } else if (sort == "hours") {
    params.sort = analysis::DrilldownSort::kGpuHours;
  } else if (sort == "rate") {
    params.sort = analysis::DrilldownSort::kFailureRate;
  } else {
    err << "--sort must be idle, failed, hours or rate\n";
    return 2;
  }
  if (!reject_unused(args, err)) return 2;

  prep::CsvParams csv;
  csv.force_categorical = {"job_id", spec.principal_column};
  auto table = prep::read_csv_file(*csv_path, csv);
  if (!table.ok()) {
    err << table.error().to_string() << "\n";
    return 2;
  }
  auto stats =
      analysis::drilldown_from_table(table.value(), spec, params);
  if (!stats.ok()) {
    err << stats.error().to_string() << "\n";
    return 2;
  }
  out << analysis::render_drilldown(stats.value());
  return 0;
}

int run_digest(const std::vector<std::string>& args_raw, std::ostream& out,
               std::ostream& err) {
  auto parsed = Args::parse(args_raw);
  if (!parsed.ok()) {
    err << parsed.error().to_string() << "\n";
    return 2;
  }
  const Args& args = parsed.value();
  const std::string keyword = args.get_or("keyword", "");
  const auto max_rules = args.get_uint("max-rules", 6);
  const auto fdr = args.get_double("fdr", 0.01);
  const auto neg_conf = args.get_double("negative-confidence", 0.7);
  const std::string exclude_list = args.get_or("exclude", "");
  auto loaded = load_trace(args);
  if (!max_rules.ok() || !fdr.ok() || !neg_conf.ok() || !loaded.ok()) {
    const Error& e = !max_rules.ok() ? max_rules.error()
                     : !fdr.ok()     ? fdr.error()
                     : !neg_conf.ok() ? neg_conf.error()
                                      : loaded.error();
    err << e.to_string() << "\n";
    return 2;
  }
  if (keyword.empty()) {
    err << "--keyword is required\n";
    return 2;
  }
  if (!reject_unused(args, err)) return 2;

  LoadedTrace trace = std::move(loaded).value();
  const auto config = trace.config;
  auto mined = analysis::mine(std::move(trace.table), config);
  const auto& catalog = mined.prepared.catalog;
  const auto keyword_id = catalog.find(keyword);
  if (!keyword_id) {
    err << "keyword '" << keyword << "' is not an encoded item\n";
    return 1;
  }
  const auto analysis = core::analyze_keyword(mined.mined, *keyword_id,
                                              config.rules, config.pruning);

  analysis::SummarizeParams summarize;
  summarize.max_rules = max_rules.value();
  const auto digest = analysis::summarize_cause_rules(
      analysis.cause, mined.prepared.db, *keyword_id, summarize);
  out << "digest (greedy coverage of '" << keyword << "' transactions):\n";
  std::vector<core::Rule> digest_rules;
  for (const auto& entry : digest) {
    out << "  " << analysis::render_rule(entry.rule, catalog)
        << "  conf=" << entry.rule.confidence << " covers " << entry.matched
        << " (+" << entry.newly_covered << " new, cum "
        << static_cast<int>(entry.cumulative_coverage * 100.0) << "%)\n";
    digest_rules.push_back(entry.rule);
  }

  const auto certified = core::significant_rules(
      digest_rules, mined.mined.db_size, fdr.value());
  out << "certified " << certified.size() << " of " << digest_rules.size()
      << " digest rules (Fisher exact, BH q=" << fdr.value() << ")\n";

  core::NegativeRuleParams negative;
  negative.min_confidence = neg_conf.value();
  negative.mining_min_support = config.mining.min_support;
  // Tautology guard: e.g. --exclude Terminated when the keyword is
  // Failed, so "{Terminated} => NOT Failed" does not top the list.
  for (const std::string& name : split_list(exclude_list)) {
    if (const auto id = catalog.find(name)) {
      negative.excluded_antecedent_items.push_back(*id);
    }
  }
  const auto safe =
      core::generate_negative_rules(mined.mined, *keyword_id, negative);
  out << "safe patterns (X => NOT " << keyword << "): " << safe.size()
      << "\n";
  for (std::size_t i = 0; i < safe.size() && i < 5; ++i) {
    out << "  {" << catalog.render(safe[i].antecedent)
        << "}  conf=" << safe[i].confidence << " lift=" << safe[i].lift
        << "\n";
  }
  return 0;
}

int run_compare(const std::vector<std::string>& args_raw, std::ostream& out,
                std::ostream& err) {
  auto parsed = Args::parse(args_raw);
  if (!parsed.ok()) {
    err << parsed.error().to_string() << "\n";
    return 2;
  }
  const Args& args = parsed.value();
  const std::string path_a = args.get_or("a", "");
  const std::string path_b = args.get_or("b", "");
  const std::string keyword = args.get_or("keyword", "");
  const auto min_lift = args.get_double("min-lift", 1.5);
  if (!min_lift.ok()) {
    err << min_lift.error().to_string() << "\n";
    return 2;
  }
  if (path_a.empty() || path_b.empty() || keyword.empty()) {
    err << "--a ARCHIVE --b ARCHIVE --keyword ITEM are required "
           "(archives from `itemsets --save`)\n";
    return 2;
  }
  if (!reject_unused(args, err)) return 2;

  auto loaded_a = core::load_mining_result_file(path_a);
  auto loaded_b = core::load_mining_result_file(path_b);
  if (!loaded_a.ok() || !loaded_b.ok()) {
    err << (!loaded_a.ok() ? loaded_a : loaded_b).error().to_string() << "\n";
    return 2;
  }
  core::LoadedMiningResult a = std::move(loaded_a).value();
  core::LoadedMiningResult b = std::move(loaded_b).value();

  core::RuleParams rule_params;
  rule_params.min_lift = min_lift.value();
  auto keyword_rules = [&](const core::LoadedMiningResult& archive)
      -> std::vector<core::Rule> {
    const auto id = archive.catalog.find(keyword);
    if (!id) return {};
    return core::filter_keyword(
        core::generate_rules(archive.result, rule_params), *id);
  };
  const auto rules_a = keyword_rules(a);
  const auto rules_b = keyword_rules(b);
  const auto cmp =
      analysis::compare_rule_sets(rules_a, a.catalog, rules_b, b.catalog);
  out << "A: " << rules_a.size() << " keyword rules; B: " << rules_b.size()
      << "; shared: " << cmp.matched.size()
      << " (Jaccard " << cmp.jaccard_overlap() << ")\n";
  if (!cmp.matched.empty()) {
    out << "on shared rules: mean |d conf| = " << cmp.mean_abs_conf_delta()
        << ", mean |d lift| = " << cmp.mean_abs_lift_delta() << "\n";
  }
  const auto show = [&](const char* title,
                        const std::vector<core::Rule>& rules,
                        const core::ItemCatalog& catalog) {
    out << title << " (" << rules.size() << "):\n";
    for (std::size_t i = 0; i < rules.size() && i < 3; ++i) {
      out << "  " << analysis::render_rule(rules[i], catalog) << "\n";
    }
  };
  show("only in A", cmp.only_a, a.catalog);
  show("only in B", cmp.only_b, b.catalog);
  return 0;
}

int run_snapshot(const std::vector<std::string>& args_raw, std::ostream& out,
                 std::ostream& err) {
  auto parsed = Args::parse(args_raw);
  if (!parsed.ok()) {
    err << parsed.error().to_string() << "\n";
    return 2;
  }
  const Args& args = parsed.value();
  const std::string out_path = args.get_or("out", "");
  if (out_path.empty()) {
    err << "--out is required (snapshot file to write)\n";
    return 2;
  }

  core::RuleSnapshot snapshot;
  if (const auto archive_path = args.get("from-itemsets");
      archive_path.has_value()) {
    // Convert a v1 text archive (`itemsets --save`); rule and pruning
    // thresholds come from the flags, as in `mine --load`.
    const auto min_lift = args.get_double("min-lift", 1.5);
    const auto c_lift = args.get_double("c-lift", 1.5);
    const auto c_supp = args.get_double("c-supp", 1.5);
    const auto threads = args.get_uint("threads", 1);
    if (!min_lift.ok() || !c_lift.ok() || !c_supp.ok() || !threads.ok()) {
      err << (!min_lift.ok() ? min_lift.error()
              : !c_lift.ok() ? c_lift.error()
              : !c_supp.ok() ? c_supp.error()
                             : threads.error())
                 .to_string()
          << "\n";
      return 2;
    }
    if (!reject_unused(args, err)) return 2;
    auto loaded = core::load_mining_result_file(*archive_path);
    if (!loaded.ok()) {
      err << loaded.error().to_string() << "\n";
      return 2;
    }
    core::RuleParams rule_params;
    rule_params.min_lift = min_lift.value();
    rule_params.num_threads = static_cast<std::size_t>(threads.value());
    core::PruneParams prune_params;
    prune_params.c_lift = c_lift.value();
    prune_params.c_supp = c_supp.value();
    core::LoadedMiningResult archive = std::move(loaded).value();
    snapshot = core::build_rule_snapshot(std::move(archive.result),
                                         std::move(archive.catalog),
                                         rule_params, prune_params);
  } else {
    auto loaded = load_trace(args);
    if (!loaded.ok()) {
      err << loaded.error().to_string() << "\n";
      return 2;
    }
    if (!reject_unused(args, err)) return 2;
    LoadedTrace trace = std::move(loaded).value();
    const analysis::WorkflowConfig config = trace.config;
    auto mined = analysis::mine(std::move(trace.table), config);
    snapshot = core::build_rule_snapshot(std::move(mined.mined),
                                         std::move(mined.prepared.catalog),
                                         config.rules, config.pruning);
  }

  const auto saved = core::save_rule_snapshot_file(snapshot, out_path);
  if (!saved.ok()) {
    err << saved.error().to_string() << "\n";
    return 1;
  }
  out << "wrote snapshot: " << snapshot.catalog.size() << " items, "
      << snapshot.result.itemsets.size() << " itemsets, "
      << snapshot.rules.size() << " rules to " << out_path << "\n";
  return 0;
}

int run_serve(const std::vector<std::string>& args_raw, std::ostream& out,
              std::ostream& err) {
  auto parsed = Args::parse(args_raw);
  if (!parsed.ok()) {
    err << parsed.error().to_string() << "\n";
    return 2;
  }
  const Args& args = parsed.value();
  const std::string snapshot_path = args.get_or("snapshot", "");
  const std::string host = args.get_or("host", "127.0.0.1");
  const auto port = args.get_uint("port", 8080);
  const auto threads = args.get_uint("threads", 4);
  const bool check_only = args.has("check");
  const std::string stats_json_path = args.get_or("stats-json", "");
  const std::string metrics_out_path = args.get_or("metrics-out", "");
  const auto slow_query_ms = args.get_double("slow-query-ms", 0.0);
  if (!configure_logging(args, err)) return 2;
  FlightDumpSession flight;
  if (!flight.arm(args, err)) return 2;
  TraceSession session(args, err);
  if (!port.ok() || !threads.ok() || !slow_query_ms.ok()) {
    err << (!port.ok()      ? port.error()
            : !threads.ok() ? threads.error()
                            : slow_query_ms.error())
               .to_string()
        << "\n";
    return 2;
  }
  if (slow_query_ms.value() < 0.0) {
    err << "--slow-query-ms must be >= 0\n";
    return 2;
  }
  if (snapshot_path.empty()) {
    err << "--snapshot is required (file from `gpumine snapshot`)\n";
    return 2;
  }
  if (port.value() > 65535) {
    err << "--port must be <= 65535\n";
    return 2;
  }
  if (!reject_unused(args, err)) return 2;

  const auto build_begin = std::chrono::steady_clock::now();
  auto snapshot = core::load_rule_snapshot_file(snapshot_path);
  if (!snapshot.ok()) {
    err << snapshot.error().to_string() << "\n";
    return 1;
  }
  auto engine = std::make_shared<const serve::QueryEngine>(
      std::move(snapshot).value());
  const double build_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    build_begin)
          .count();
  out << "loaded " << engine->num_rules() << " rules over "
      << engine->catalog().size() << " items ("
      << engine->num_keywords_with_rules() << " keywords with rules) in "
      << build_seconds << "s\n";

  serve::RequestHandler handler(std::move(engine), snapshot_path);
  if (slow_query_ms.value() > 0.0) {
    // The slow-query log reads the request's spans out of the flight
    // rings, so the flight sink must be on for the subtree to exist.
    handler.set_slow_query_ns(
        static_cast<std::uint64_t>(slow_query_ms.value() * 1e6));
    FlightRecorder::instance().enable_recording();
  }
  serve::ServerConfig config;
  config.host = host;
  config.port = static_cast<std::uint16_t>(port.value());
  config.num_threads = static_cast<std::size_t>(threads.value());
  serve::Server server(handler, config);
  const auto started = server.start();
  if (!started.ok()) {
    err << started.error().to_string() << "\n";
    return 1;
  }
  out << "serving on " << host << ':' << server.port() << " with "
      << config.num_threads << " threads\n";
  if (check_only) {
    // Exercise the handler once so --check verifies the request path
    // (and a --trace session has request spans to export).
    const serve::HttpResponse health = handler.handle("GET", "/healthz");
    if (health.status != 200) {
      err << "health check failed with status " << health.status << "\n";
      server.stop();
      return 1;
    }
    // And the exposition path: scrape /metrics, then lint the document
    // the way promtool would.
    const serve::HttpResponse metrics = handler.handle("GET", "/metrics");
    if (metrics.status != 200) {
      err << "metrics check failed with status " << metrics.status << "\n";
      server.stop();
      return 1;
    }
    const auto lint = validate_prometheus_text(metrics.body);
    if (!lint.ok()) {
      err << "metrics self-check failed: " << lint.error().to_string()
          << "\n";
      server.stop();
      return 1;
    }
    out << "metrics check ok: " << lint.value() << " series\n";
    server.stop();
    if (!stats_json_path.empty() &&
        !write_text_file(stats_json_path,
                         handler.handle("GET", "/stats").body, err)) {
      return 1;
    }
    if (!metrics_out_path.empty() &&
        !write_metrics_file(metrics_out_path, metrics.body, out, err)) {
      return 1;
    }
    return session.finish(out) ? 0 : 1;
  }

  g_serve_stop = 0;
  std::signal(SIGINT, handle_serve_signal);
  std::signal(SIGTERM, handle_serve_signal);
  out.flush();
  while (g_serve_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  server.stop();
  if (!stats_json_path.empty() &&
      !write_text_file(stats_json_path, handler.handle("GET", "/stats").body,
                       err)) {
    return 1;
  }
  if (!metrics_out_path.empty() &&
      !write_metrics_file(metrics_out_path,
                          handler.handle("GET", "/metrics").body, out, err)) {
    return 1;
  }
  out << "stopped\n";
  return session.finish(out) ? 0 : 1;
}

int run_query(const std::vector<std::string>& args_raw, std::ostream& out,
              std::ostream& err) {
  auto parsed = Args::parse(args_raw);
  if (!parsed.ok()) {
    err << parsed.error().to_string() << "\n";
    return 2;
  }
  const Args& args = parsed.value();
  const std::string host = args.get_or("host", "127.0.0.1");
  const auto port = args.get_uint("port", 8080);
  const std::string keyword = args.get_or("keyword", "");
  const std::string items = args.get_or("items", "");
  const bool stats = args.has("stats");
  const bool reload = args.has("reload");
  const bool health = args.has("health");
  TraceSession session(args, err);
  if (!port.ok()) {
    err << port.error().to_string() << "\n";
    return 2;
  }
  if (!reject_unused(args, err)) return 2;
  const int actions = (keyword.empty() ? 0 : 1) + (items.empty() ? 0 : 1) +
                      (stats ? 1 : 0) + (reload ? 1 : 0) + (health ? 1 : 0);
  if (actions != 1) {
    err << "pick exactly one of --keyword ITEM, --items A,B, --stats, "
           "--reload, --health\n";
    return 2;
  }

  std::string method = "GET";
  std::string target;
  if (!keyword.empty()) {
    target = "/query?keyword=" + percent_encode(keyword);
  } else if (!items.empty()) {
    // Commas separate items server-side; encode each name around them.
    target = "/support?items=";
    bool first = true;
    for (const std::string& name : split_list(items)) {
      if (!first) target += ',';
      first = false;
      target += percent_encode(name);
    }
  } else if (stats) {
    target = "/stats";
  } else if (reload) {
    method = "POST";
    target = "/reload";
  } else {
    target = "/healthz";
  }

  const auto response = [&] {
    GPUMINE_SPAN("client/request");
    return serve::http_request(host, static_cast<std::uint16_t>(port.value()),
                               method, target);
  }();
  if (!response.ok()) {
    err << response.error().to_string() << "\n";
    return 1;
  }
  out << response.value().body;
  if (response.value().body.empty() || response.value().body.back() != '\n') {
    out << "\n";
  }
  if (!session.finish(out)) return 1;
  return response.value().status >= 200 && response.value().status < 300 ? 0
                                                                         : 1;
}

int run_trace_check(const std::vector<std::string>& args_raw,
                    std::ostream& out, std::ostream& err) {
  auto parsed = Args::parse(args_raw);
  if (!parsed.ok()) {
    err << parsed.error().to_string() << "\n";
    return 2;
  }
  const Args& args = parsed.value();
  const std::string file = args.get_or("file", "");
  if (file.empty()) {
    err << "--file is required (a trace written by --trace)\n";
    return 2;
  }
  if (!reject_unused(args, err)) return 2;
  const auto checked = validate_chrome_trace_file(file);
  if (!checked.ok()) {
    err << "invalid trace: " << checked.error().to_string() << "\n";
    return 1;
  }
  out << "ok: " << checked.value() << " well-formed spans in " << file
      << "\n";
  return 0;
}

int run_metrics_check(const std::vector<std::string>& args_raw,
                      std::ostream& out, std::ostream& err) {
  auto parsed = Args::parse(args_raw);
  if (!parsed.ok()) {
    err << parsed.error().to_string() << "\n";
    return 2;
  }
  const Args& args = parsed.value();
  const std::string file = args.get_or("file", "");
  if (file.empty()) {
    err << "--file is required (an exposition file from --metrics-out)\n";
    return 2;
  }
  if (!reject_unused(args, err)) return 2;
  const auto checked = validate_prometheus_file(file);
  if (!checked.ok()) {
    err << "invalid metrics: " << checked.error().to_string() << "\n";
    return 1;
  }
  out << "ok: " << checked.value() << " well-formed series in " << file
      << "\n";
  return 0;
}

int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err) {
  if (args.empty() || args[0] == "help" || args[0] == "--help") {
    return run_help(out);
  }
  const std::string command = args[0];
  const std::vector<std::string> rest(args.begin() + 1, args.end());
  if (command == "synth") return run_synth(rest, out, err);
  if (command == "itemsets") return run_itemsets(rest, out, err);
  if (command == "mine") return run_mine(rest, out, err);
  if (command == "predict") return run_predict(rest, out, err);
  if (command == "report") return run_report(rest, out, err);
  if (command == "digest") return run_digest(rest, out, err);
  if (command == "compare") return run_compare(rest, out, err);
  if (command == "snapshot") return run_snapshot(rest, out, err);
  if (command == "serve") return run_serve(rest, out, err);
  if (command == "query") return run_query(rest, out, err);
  if (command == "trace-check") return run_trace_check(rest, out, err);
  if (command == "metrics-check") return run_metrics_check(rest, out, err);
  err << "unknown command '" << command << "' (try: gpumine help)\n";
  return 2;
}

}  // namespace gpumine::cli
