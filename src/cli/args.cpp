#include "cli/args.hpp"

#include <algorithm>
#include <charconv>

namespace gpumine::cli {

Result<Args> Args::parse(const std::vector<std::string>& raw) {
  Args args;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const std::string& token = raw[i];
    if (token.rfind("--", 0) != 0) {
      args.positionals_.push_back(token);
      continue;
    }
    std::string name = token.substr(2);
    if (name.empty()) {
      return Error{"args", "bare '--' is not a valid flag"};
    }
    if (const auto eq = name.find('='); eq != std::string::npos) {
      args.flags_[name.substr(0, eq)] = name.substr(eq + 1);
      continue;
    }
    if (i + 1 >= raw.size() || raw[i + 1].rfind("--", 0) == 0) {
      // Valueless switch.
      args.flags_[name] = "";
      continue;
    }
    args.flags_[name] = raw[++i];
  }
  return args;
}

bool Args::has(const std::string& name) const {
  queried_.insert(name);
  return flags_.contains(name);
}

std::optional<std::string> Args::get(const std::string& name) const {
  queried_.insert(name);
  auto it = flags_.find(name);
  if (it == flags_.end()) return std::nullopt;
  return it->second;
}

std::string Args::get_or(const std::string& name, std::string fallback) const {
  auto value = get(name);
  return value.has_value() ? *value : std::move(fallback);
}

Result<double> Args::get_double(const std::string& name,
                                double fallback) const {
  const auto value = get(name);
  if (!value.has_value()) return fallback;
  double out = 0.0;
  const char* begin = value->data();
  const char* end = begin + value->size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  if (ec != std::errc{} || ptr != end) {
    return Error{"--" + name, "expected a number, got '" + *value + "'"};
  }
  return out;
}

Result<std::uint64_t> Args::get_uint(const std::string& name,
                                     std::uint64_t fallback) const {
  const auto value = get(name);
  if (!value.has_value()) return fallback;
  std::uint64_t out = 0;
  const char* begin = value->data();
  const char* end = begin + value->size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  if (ec != std::errc{} || ptr != end) {
    return Error{"--" + name,
                 "expected a non-negative integer, got '" + *value + "'"};
  }
  return out;
}

std::vector<std::string> Args::unused() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : flags_) {
    if (!queried_.contains(name)) out.push_back(name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace gpumine::cli
