// Minimal command-line argument parser for the gpumine tool.
//
// Flags are "--name value" or "--name=value"; everything else is
// positional. Commands read flags through typed getters with defaults;
// `check_unused` turns typos into errors instead of silently ignored
// options (queried names are tracked).
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.hpp"

namespace gpumine::cli {

class Args {
 public:
  /// Parses raw arguments (no program name). Returns an Error for a
  /// malformed flag ("--" with no name, or a flag missing its value).
  static Result<Args> parse(const std::vector<std::string>& raw);

  [[nodiscard]] const std::vector<std::string>& positionals() const {
    return positionals_;
  }

  /// True if the flag was given (with or without value).
  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::optional<std::string> get(const std::string& name) const;
  [[nodiscard]] std::string get_or(const std::string& name,
                                   std::string fallback) const;
  /// Numeric getters return an Error for unparsable values.
  [[nodiscard]] Result<double> get_double(const std::string& name,
                                          double fallback) const;
  [[nodiscard]] Result<std::uint64_t> get_uint(const std::string& name,
                                               std::uint64_t fallback) const;

  /// Names given on the command line but never queried; call after the
  /// command has pulled all its flags.
  [[nodiscard]] std::vector<std::string> unused() const;

 private:
  std::unordered_map<std::string, std::string> flags_;
  std::vector<std::string> positionals_;
  mutable std::set<std::string> queried_;
};

}  // namespace gpumine::cli
