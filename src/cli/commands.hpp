// Subcommand implementations behind the `gpumine` binary. All output
// goes through the provided streams and the return value is the process
// exit code, so the commands are unit-testable without spawning.
//
//   gpumine synth    --trace pai|supercloud|philly --jobs N --seed S
//                    --out trace.csv
//   gpumine itemsets --csv trace.csv [--min-support F] [--max-length K]
//                    [--algorithm fpgrowth|apriori|eclat] [--top N]
//   gpumine mine     --csv trace.csv --keyword ITEM [--min-support F]
//                    [--min-lift F] [--max-length K] [--c-lift F]
//                    [--c-supp F] [--bare col,col] [--group col,col]
//                    [--drop col,col] [--max-rows N]
//   gpumine predict  --csv trace.csv --target ITEM [--holdout F]
//                    [--min-confidence F] [--seed N] [+ mine flags]
//   gpumine snapshot (--csv trace.csv | --from-itemsets FILE) --out FILE
//                    [+ mine flags]
//   gpumine serve    --snapshot FILE [--host H] [--port P] [--threads N]
//   gpumine query    [--host H] [--port P] (--keyword ITEM |
//                    --items A,B | --stats | --reload | --health)
//   gpumine help
//
// `itemsets` and `mine` bin every numeric CSV column with the paper's
// defaults (equal-frequency quartiles; automatic 0-value and "Std" spike
// bins); `--group` applies the 25%-share Freq/Regular/New grouping to
// high-cardinality categorical columns such as user ids.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace gpumine::cli {

/// Dispatches `argv`-style arguments (without the program name).
int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err);

int run_help(std::ostream& out);
int run_synth(const std::vector<std::string>& args, std::ostream& out,
              std::ostream& err);
int run_itemsets(const std::vector<std::string>& args, std::ostream& out,
                 std::ostream& err);
int run_mine(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err);
int run_predict(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err);
int run_report(const std::vector<std::string>& args, std::ostream& out,
               std::ostream& err);
/// Operator digest: greedy rule summary + Fisher/FDR certification +
/// negative "safe pattern" rules for one keyword.
int run_digest(const std::vector<std::string>& args, std::ostream& out,
               std::ostream& err);
/// Compares the keyword rule sets of two itemset archives (from
/// `itemsets --save`) — overlap, metric divergence, and the rules unique
/// to each system.
int run_compare(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err);
/// Builds a v2 rule snapshot (core/snapshot.hpp) from a trace CSV or a
/// v1 itemset archive, for `gpumine serve`.
int run_snapshot(const std::vector<std::string>& args, std::ostream& out,
                 std::ostream& err);
/// Serves rule queries from a snapshot file over HTTP + line protocol;
/// blocks until SIGINT/SIGTERM (or returns immediately with --check).
int run_serve(const std::vector<std::string>& args, std::ostream& out,
              std::ostream& err);
/// One-shot client for a running `gpumine serve` instance.
int run_query(const std::vector<std::string>& args, std::ostream& out,
              std::ostream& err);
/// Validates a Chrome trace-event file written by `--trace` (the same
/// self-check the exporter runs before reporting success).
int run_trace_check(const std::vector<std::string>& args, std::ostream& out,
                    std::ostream& err);
/// Lints a Prometheus exposition file written by `--metrics-out` (the
/// same check `serve --check` runs against its own /metrics scrape).
int run_metrics_check(const std::vector<std::string>& args, std::ostream& out,
                      std::ostream& err);

}  // namespace gpumine::cli
