// Cross-trace rule-set comparison.
//
// The paper argues (Fig. 2 discussion) that rule metrics are not
// comparable across systems and that the workflow's value is finding
// *system-specific* insights. This module makes that claim measurable:
// given two rule sets from different traces (each with its own item
// vocabulary), it matches rules by their rendered item names and reports
// the overlap plus the metric divergence on shared rules. A tiny overlap
// with large metric deltas is exactly the paper's point.
#pragma once

#include <string>
#include <vector>

#include "core/item_catalog.hpp"
#include "core/rules.hpp"

namespace gpumine::analysis {

struct MatchedRule {
  core::Rule a;
  core::Rule b;
  double conf_delta;  // a.confidence - b.confidence
  double lift_delta;  // a.lift - b.lift
};

struct RuleSetComparison {
  std::vector<MatchedRule> matched;   // same antecedent & consequent items
  std::vector<core::Rule> only_a;
  std::vector<core::Rule> only_b;

  [[nodiscard]] double jaccard_overlap() const;  // |matched| / |union|
  [[nodiscard]] double mean_abs_conf_delta() const;
  [[nodiscard]] double mean_abs_lift_delta() const;
};

/// Matches by the sorted rendered item names of each side, so the two
/// rule sets may come from different catalogs (different traces).
/// Duplicate rules within one set (same rendered key) are matched
/// first-to-first; extras land in only_a / only_b.
[[nodiscard]] RuleSetComparison compare_rule_sets(
    const std::vector<core::Rule>& rules_a, const core::ItemCatalog& catalog_a,
    const std::vector<core::Rule>& rules_b, const core::ItemCatalog& catalog_b);

}  // namespace gpumine::analysis
