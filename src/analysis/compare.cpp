#include "analysis/compare.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace gpumine::analysis {
namespace {

// Canonical text key for a rule: sorted item names on each side. Item
// ids differ across catalogs; names are the shared vocabulary.
std::string rule_key(const core::Rule& rule,
                     const core::ItemCatalog& catalog) {
  auto side = [&](const core::Itemset& items) {
    std::vector<std::string> names;
    names.reserve(items.size());
    for (core::ItemId id : items) names.push_back(catalog.name(id));
    std::sort(names.begin(), names.end());
    std::string out;
    for (const auto& n : names) {
      out += n;
      out += '\x1f';  // unit separator: cannot appear in item names
    }
    return out;
  };
  return side(rule.antecedent) + "\x1e" + side(rule.consequent);
}

}  // namespace

double RuleSetComparison::jaccard_overlap() const {
  const std::size_t uni = matched.size() + only_a.size() + only_b.size();
  return uni == 0 ? 0.0
                  : static_cast<double>(matched.size()) /
                        static_cast<double>(uni);
}

double RuleSetComparison::mean_abs_conf_delta() const {
  if (matched.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& m : matched) sum += std::abs(m.conf_delta);
  return sum / static_cast<double>(matched.size());
}

double RuleSetComparison::mean_abs_lift_delta() const {
  if (matched.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& m : matched) sum += std::abs(m.lift_delta);
  return sum / static_cast<double>(matched.size());
}

RuleSetComparison compare_rule_sets(const std::vector<core::Rule>& rules_a,
                                    const core::ItemCatalog& catalog_a,
                                    const std::vector<core::Rule>& rules_b,
                                    const core::ItemCatalog& catalog_b) {
  std::unordered_map<std::string, std::vector<std::size_t>> b_by_key;
  for (std::size_t i = 0; i < rules_b.size(); ++i) {
    b_by_key[rule_key(rules_b[i], catalog_b)].push_back(i);
  }

  RuleSetComparison out;
  std::vector<bool> b_used(rules_b.size(), false);
  for (const core::Rule& a : rules_a) {
    const std::string key = rule_key(a, catalog_a);
    auto it = b_by_key.find(key);
    std::size_t match = rules_b.size();
    if (it != b_by_key.end()) {
      for (std::size_t candidate : it->second) {
        if (!b_used[candidate]) {
          match = candidate;
          break;
        }
      }
    }
    if (match == rules_b.size()) {
      out.only_a.push_back(a);
    } else {
      b_used[match] = true;
      const core::Rule& b = rules_b[match];
      out.matched.push_back(
          {a, b, a.confidence - b.confidence, a.lift - b.lift});
    }
  }
  for (std::size_t i = 0; i < rules_b.size(); ++i) {
    if (!b_used[i]) out.only_b.push_back(rules_b[i]);
  }
  return out;
}

}  // namespace gpumine::analysis
