#include "analysis/export.hpp"

#include <cmath>
#include <cstdio>

namespace gpumine::analysis {
namespace {

std::string fmt(double v) {
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string join_items(const core::Itemset& items,
                       const core::ItemCatalog& catalog,
                       const char* separator) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += separator;
    out += catalog.name(items[i]);
  }
  return out;
}

std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += "\"";
  return out;
}

void append_csv_rows(std::string& out, const std::vector<core::Rule>& rules,
                     const char* kind, const core::ItemCatalog& catalog) {
  for (const core::Rule& r : rules) {
    out += kind;
    out += ',';
    out += csv_field(join_items(r.antecedent, catalog, " + "));
    out += ',';
    out += csv_field(join_items(r.consequent, catalog, " + "));
    out += ',';
    out += fmt(r.support);
    out += ',';
    out += fmt(r.confidence);
    out += ',';
    out += fmt(r.lift);
    out += ',';
    out += fmt(r.leverage);
    out += ',';
    out += fmt(r.conviction);
    out += '\n';
  }
}

void append_json_items(std::string& out, const core::Itemset& items,
                       const core::ItemCatalog& catalog) {
  out += '[';
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ',';
    out += '"';
    out += json_escape(catalog.name(items[i]));
    out += '"';
  }
  out += ']';
}

void append_json_rules(std::string& out, const std::vector<core::Rule>& rules,
                       const core::ItemCatalog& catalog) {
  out += '[';
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (i > 0) out += ',';
    const core::Rule& r = rules[i];
    out += "{\"antecedent\":";
    append_json_items(out, r.antecedent, catalog);
    out += ",\"consequent\":";
    append_json_items(out, r.consequent, catalog);
    out += ",\"support\":" + fmt(r.support);
    out += ",\"confidence\":" + fmt(r.confidence);
    out += ",\"lift\":" + fmt(r.lift);
    out += '}';
  }
  out += ']';
}

std::string md_escape(std::string s) {
  std::string out;
  for (char c : s) {
    if (c == '|') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char raw : text) {
    const auto c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string rules_to_csv(const core::KeywordAnalysis& analysis,
                         const core::ItemCatalog& catalog) {
  std::string out =
      "kind,antecedent,consequent,support,confidence,lift,leverage,"
      "conviction\n";
  append_csv_rows(out, analysis.cause, "C", catalog);
  append_csv_rows(out, analysis.characteristic, "A", catalog);
  return out;
}

std::string rules_to_json(const core::KeywordAnalysis& analysis,
                          const core::ItemCatalog& catalog) {
  std::string out = "{\"keyword\":\"";
  out += json_escape(catalog.name(analysis.keyword));
  out += "\",\"cause\":";
  append_json_rules(out, analysis.cause, catalog);
  out += ",\"characteristic\":";
  append_json_rules(out, analysis.characteristic, catalog);
  out += "}";
  return out;
}

std::string rules_to_markdown(const core::KeywordAnalysis& analysis,
                              const core::ItemCatalog& catalog,
                              std::size_t max_rows_per_side) {
  std::string out = "| | Antecedent | Consequent | Supp. | Conf. | Lift |\n";
  out += "|---|---|---|---|---|---|\n";
  const auto emit = [&](const std::vector<core::Rule>& rules,
                        const char* prefix) {
    const std::size_t n = std::min(rules.size(), max_rows_per_side);
    for (std::size_t i = 0; i < n; ++i) {
      const core::Rule& r = rules[i];
      out += "| ";
      out += prefix + std::to_string(i + 1);
      out += " | " + md_escape(join_items(r.antecedent, catalog, ", "));
      out += " | " + md_escape(join_items(r.consequent, catalog, ", "));
      char buf[64];
      std::snprintf(buf, sizeof(buf), " | %.2f | %.2f | %.2f |\n", r.support,
                    r.confidence, r.lift);
      out += buf;
    }
  };
  emit(analysis.cause, "C");
  emit(analysis.characteristic, "A");
  return out;
}

}  // namespace gpumine::analysis
