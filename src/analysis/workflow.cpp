#include "analysis/workflow.hpp"

#include "common/ensure.hpp"

namespace gpumine::analysis {

PreparedTrace prepare(prep::Table table, const WorkflowConfig& config) {
  if (config.require_present.has_value()) {
    const auto& col = table.categorical(*config.require_present);
    std::vector<bool> keep(table.num_rows());
    for (std::size_t r = 0; r < keep.size(); ++r) {
      keep[r] = !col.is_missing(r);
    }
    table = table.filter_rows(keep);
  }

  for (const std::string& name : config.drop_columns) {
    if (table.has_column(name)) table.drop_column(name);
  }

  PreparedTrace out;
  for (const ColumnBinning& b : config.binnings) {
    if (!table.has_column(b.column)) continue;  // trace without the feature
    out.bin_specs.emplace_back(b.column,
                               prep::bin_column(table, b.column, b.params));
  }
  for (const ColumnGrouping& g : config.groupings) {
    if (!table.has_column(g.column)) continue;
    prep::group_column_by_share(table, g.column, g.params);
  }
  for (const ColumnMerge& m : config.merges) {
    if (!table.has_column(m.column)) continue;
    prep::merge_column_categories(table, m.column, m.mapping, m.fallback);
  }

  prep::EncodeResult encoded = prep::encode(table, config.encoder);
  out.db = std::move(encoded.db);
  out.catalog = std::move(encoded.catalog);
  out.dropped_items = std::move(encoded.dropped_items);
  return out;
}

MinedTrace mine(prep::Table table, const WorkflowConfig& config) {
  MinedTrace out;
  out.prepared = prepare(std::move(table), config);
  out.mined =
      core::mine_frequent(out.prepared.db, config.mining, config.algorithm);
  return out;
}

core::KeywordAnalysis analyze(const MinedTrace& trace,
                              const std::string& keyword_item,
                              const WorkflowConfig& config) {
  const auto keyword = trace.prepared.catalog.find(keyword_item);
  GPUMINE_CHECK_ARG(keyword.has_value(),
                    "keyword item '" + keyword_item +
                        "' not in the catalog (misspelled, or dropped by "
                        "the dominance filter)");
  return core::analyze_keyword(trace.mined, *keyword, config.rules,
                               config.pruning);
}

}  // namespace gpumine::analysis
