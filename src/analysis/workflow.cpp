#include "analysis/workflow.hpp"

#include <chrono>
#include <utility>

#include "common/ensure.hpp"
#include "common/thread_pool.hpp"
#include "common/trace.hpp"
#include "core/partitioned.hpp"

namespace gpumine::analysis {
namespace {

double seconds_since(std::chrono::steady_clock::time_point begin) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       begin)
      .count();
}

}  // namespace

PreparedTrace prepare(prep::Table table, const WorkflowConfig& config) {
  if (config.require_present.has_value()) {
    const auto& col = table.categorical(*config.require_present);
    std::vector<bool> keep(table.num_rows());
    for (std::size_t r = 0; r < keep.size(); ++r) {
      keep[r] = !col.is_missing(r);
    }
    table = table.filter_rows(keep);
  }

  for (const std::string& name : config.drop_columns) {
    if (table.has_column(name)) table.drop_column(name);
  }

  PreparedTrace out;
  // Binning: fit + apply are independent per column, so they fan out
  // over the pool; column replacement (and the spec list, which keeps
  // config order) stays serial.
  const auto binning_begin = std::chrono::steady_clock::now();
  {
    GPUMINE_SPAN("prep/binning");
    std::vector<const ColumnBinning*> todo;
  for (const ColumnBinning& b : config.binnings) {
    // Skip columns that arrived pre-binned (already categorical): the
    // fit needs numeric values, and passing such a table through is
    // how callers re-run prepare on partially processed traces.
    if (table.has_column(b.column) && table.is_numeric(b.column)) {
      todo.push_back(&b);
    }
  }
    std::vector<std::pair<prep::BinSpec, prep::CategoricalColumn>> fitted(
        todo.size());
    const auto fit_one = [&](std::size_t i) {
      GPUMINE_SPAN("prep/bin_column");
      const prep::NumericColumn& col = table.numeric(todo[i]->column);
      prep::BinSpec spec = prep::fit_bins(col.values, todo[i]->params);
      prep::CategoricalColumn binned = prep::apply_bins(col, spec);
      fitted[i] = {std::move(spec), std::move(binned)};
    };
    if (config.prep_threads != 1 && todo.size() > 1) {
      ThreadPool pool(config.prep_threads);
      pool.parallel_for(todo.size(), fit_one);
    } else {
      for (std::size_t i = 0; i < todo.size(); ++i) fit_one(i);
    }
    for (std::size_t i = 0; i < todo.size(); ++i) {
      table.replace_column(todo[i]->column, std::move(fitted[i].second));
      out.bin_specs.emplace_back(todo[i]->column, std::move(fitted[i].first));
    }
    for (const ColumnGrouping& g : config.groupings) {
      if (!table.has_column(g.column)) continue;
      prep::group_column_by_share(table, g.column, g.params);
    }
    for (const ColumnMerge& m : config.merges) {
      if (!table.has_column(m.column)) continue;
      prep::merge_column_categories(table, m.column, m.mapping, m.fallback);
    }
  }
  out.prep_metrics.binning_seconds = seconds_since(binning_begin);

  const auto encode_begin = std::chrono::steady_clock::now();
  prep::EncoderParams encoder = config.encoder;
  if (encoder.num_threads == 1) encoder.num_threads = config.prep_threads;
  prep::EncodeResult encoded = prep::encode(table, encoder);
  out.prep_metrics.encode_seconds = seconds_since(encode_begin);
  out.db = std::move(encoded.db);
  out.catalog = std::move(encoded.catalog);
  out.dropped_items = std::move(encoded.dropped_items);
  return out;
}

MinedTrace mine(prep::Table table, const WorkflowConfig& config) {
  MinedTrace out;
  out.prepared = prepare(std::move(table), config);
  core::PrepStageMetrics pm = out.prepared.prep_metrics;
  pm.input_transactions = out.prepared.db.size();
  if (config.engine == MiningEngine::kSon) {
    // The SON engine dedups inside each partition slice, so a global
    // dedup pass here would only duplicate work; distinct-row
    // accounting comes out of the partition stage instead.
    core::PartitionedParams son;
    son.mining = config.mining;
    son.num_partitions = config.num_partitions;
    son.num_threads = config.mining.num_threads;
    son.dedup_partitions = config.dedup_transactions;
    out.mined = core::mine_partitioned(out.prepared.db, son);
    pm.distinct_transactions =
        out.mined.metrics.partition_stage.distinct_rows;
    pm.dedup_ratio = pm.distinct_transactions == 0
                         ? 0.0
                         : static_cast<double>(pm.input_transactions) /
                               static_cast<double>(pm.distinct_transactions);
  } else if (config.dedup_transactions) {
    // Mining runs over the weighted deduplicated database; support math
    // uses total_weight(), so the result (itemsets, counts, db_size) is
    // byte-identical to mining the expanded one. `prepared.db` keeps
    // the full row-per-job view for downstream consumers (summaries,
    // classifiers, validation scans).
    const auto dedup_begin = std::chrono::steady_clock::now();
    const core::TransactionDb deduped = [&] {
      GPUMINE_SPAN("prep/dedup");
      return out.prepared.db.dedup();
    }();
    pm.dedup_seconds = seconds_since(dedup_begin);
    pm.distinct_transactions = deduped.size();
    pm.dedup_ratio = deduped.empty()
                         ? 0.0
                         : static_cast<double>(pm.input_transactions) /
                               static_cast<double>(deduped.size());
    out.mined = core::mine_frequent(deduped, config.mining, config.algorithm);
  } else {
    out.mined =
        core::mine_frequent(out.prepared.db, config.mining, config.algorithm);
  }
  out.mined.metrics.prep_stage = pm;
  return out;
}

core::KeywordAnalysis analyze(const MinedTrace& trace,
                              const std::string& keyword_item,
                              const WorkflowConfig& config) {
  const auto keyword = trace.prepared.catalog.find(keyword_item);
  GPUMINE_CHECK_ARG(keyword.has_value(),
                    "keyword item '" + keyword_item +
                        "' not in the catalog (misspelled, or dropped by "
                        "the dominance filter)");
  return core::analyze_keyword(trace.mined, *keyword, config.rules,
                               config.pruning);
}

}  // namespace gpumine::analysis
