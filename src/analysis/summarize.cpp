#include "analysis/summarize.hpp"

#include <algorithm>

#include "common/ensure.hpp"

namespace gpumine::analysis {

void SummarizeParams::validate() const {
  GPUMINE_CHECK_ARG(max_rules >= 1, "max_rules must be >= 1");
  GPUMINE_CHECK_ARG(target_coverage > 0.0 && target_coverage <= 1.0,
                    "target_coverage must be in (0, 1]");
}

std::vector<SummaryEntry> summarize_cause_rules(
    const std::vector<core::Rule>& rules, const core::TransactionDb& db,
    core::ItemId keyword, const SummarizeParams& params) {
  params.validate();

  // Index the keyword transactions once.
  std::vector<std::size_t> keyword_txns;
  for (std::size_t t = 0; t < db.size(); ++t) {
    if (core::contains(db[t], keyword)) keyword_txns.push_back(t);
  }
  std::vector<SummaryEntry> summary;
  if (keyword_txns.empty()) return summary;

  // Candidate rules with their match sets over the keyword transactions.
  struct Candidate {
    const core::Rule* rule;
    std::vector<std::uint32_t> matches;  // indices into keyword_txns
  };
  std::vector<Candidate> candidates;
  for (const core::Rule& r : rules) {
    if (!core::contains(r.consequent, keyword)) continue;
    Candidate c{&r, {}};
    for (std::uint32_t i = 0; i < keyword_txns.size(); ++i) {
      if (core::is_subset(r.antecedent, db[keyword_txns[i]])) {
        c.matches.push_back(i);
      }
    }
    if (!c.matches.empty()) candidates.push_back(std::move(c));
  }

  std::vector<bool> covered(keyword_txns.size(), false);
  std::uint64_t total_covered = 0;
  const auto total = static_cast<double>(keyword_txns.size());

  while (summary.size() < params.max_rules &&
         static_cast<double>(total_covered) / total <
             params.target_coverage) {
    // Pick the candidate adding the most new coverage; ties by lift,
    // then the deterministic rule order.
    std::size_t best = candidates.size();
    std::uint64_t best_new = 0;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      std::uint64_t fresh = 0;
      for (std::uint32_t m : candidates[i].matches) {
        if (!covered[m]) ++fresh;
      }
      const bool better =
          fresh > best_new ||
          (fresh == best_new && best < candidates.size() && fresh > 0 &&
           candidates[i].rule->lift > candidates[best].rule->lift);
      if (better) {
        best = i;
        best_new = fresh;
      }
    }
    if (best == candidates.size() || best_new < params.min_new_coverage) {
      break;  // nothing useful left
    }

    SummaryEntry entry;
    entry.rule = *candidates[best].rule;
    entry.matched = candidates[best].matches.size();
    entry.newly_covered = best_new;
    for (std::uint32_t m : candidates[best].matches) {
      if (!covered[m]) {
        covered[m] = true;
        ++total_covered;
      }
    }
    entry.cumulative_coverage = static_cast<double>(total_covered) / total;
    summary.push_back(std::move(entry));
    candidates.erase(candidates.begin() +
                     static_cast<std::ptrdiff_t>(best));
  }
  return summary;
}

}  // namespace gpumine::analysis
