// Rule-based classification (CBA-style), operationalizing the paper's
// takeaways: "a simple rule-based or tree-based classifier will suffice
// for prediction of job failures" on PAI, while "more complex models
// will be needed" for SuperCloud and Philly (Sec. IV-C). The
// ext_failure_prediction bench measures exactly that gap.
//
// The classifier consumes *cause rules* (target item in the consequent)
// from a keyword analysis, orders them by precedence (confidence, then
// lift, then support, then shorter antecedent), and classifies a
// transaction by the first rule whose antecedent it satisfies. No match
// falls through to the configured default.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/itemset.hpp"
#include "core/rules.hpp"
#include "core/transaction_db.hpp"

namespace gpumine::analysis {

struct ClassifierParams {
  /// Rules below this confidence are not used for prediction.
  double min_confidence = 0.5;
  /// Prediction when no rule matches.
  bool default_positive = false;
};

class RuleClassifier {
 public:
  /// `rules` should contain cause rules for `target` (target item in the
  /// consequent); rules whose consequent lacks the target or whose
  /// confidence is below the threshold are ignored. The kept rules are
  /// sorted into precedence order.
  RuleClassifier(std::vector<core::Rule> rules, core::ItemId target,
                 const ClassifierParams& params = {});

  /// True = target predicted present. The target item itself is ignored
  /// if it appears in `transaction` (no label leakage).
  [[nodiscard]] bool predict(std::span<const core::ItemId> transaction) const;

  /// Index of the first matching rule, or npos when the default fired —
  /// the interpretability hook: every positive prediction names its rule.
  static constexpr std::size_t kNoRule = static_cast<std::size_t>(-1);
  [[nodiscard]] std::size_t explain(
      std::span<const core::ItemId> transaction) const;

  [[nodiscard]] const std::vector<core::Rule>& rules() const { return rules_; }
  [[nodiscard]] core::ItemId target() const { return target_; }

 private:
  std::vector<core::Rule> rules_;
  core::ItemId target_;
  bool default_positive_;
};

/// Binary-classification quality over a labeled database: ground truth =
/// presence of the target item in the transaction.
struct Evaluation {
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
  std::size_t true_negatives = 0;
  std::size_t false_negatives = 0;

  [[nodiscard]] double accuracy() const;
  [[nodiscard]] double precision() const;
  [[nodiscard]] double recall() const;
  [[nodiscard]] double f1() const;
};

[[nodiscard]] Evaluation evaluate(const RuleClassifier& classifier,
                                  const core::TransactionDb& db);

}  // namespace gpumine::analysis
