// Per-principal drill-down and waste accounting.
//
// Rules say *what* associates with underutilization and failure; the
// drill-down says *who* and *how much*: per user (or job group), how
// many GPU-hours were consumed, how many of them on jobs whose SM
// utilization rounded to zero, and how many on jobs that failed. This is
// the quantitative backing for the paper's operational takeaways
// ("focus on the high failure rate of users and provide corresponding
// support", Sec. IV-C) — the rules point at "Freq User", the drill-down
// names and sizes the offender.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "prep/table.hpp"
#include "trace/job.hpp"

namespace gpumine::analysis {

struct PrincipalStats {
  std::string principal;
  std::size_t jobs = 0;
  std::size_t failed = 0;
  std::size_t killed = 0;
  std::size_t zero_sm = 0;        // jobs with mean SM util < 0.5%
  double gpu_hours = 0.0;         // sum over jobs of gpus * runtime
  double idle_gpu_hours = 0.0;    // restricted to zero-SM jobs
  double failed_gpu_hours = 0.0;  // restricted to failed jobs

  [[nodiscard]] double failure_rate() const {
    return jobs == 0 ? 0.0
                     : static_cast<double>(failed) /
                           static_cast<double>(jobs);
  }
  [[nodiscard]] double idle_fraction() const {
    return gpu_hours == 0.0 ? 0.0 : idle_gpu_hours / gpu_hours;
  }
};

enum class DrilldownKey { kUser, kGroup };
enum class DrilldownSort {
  kIdleGpuHours,    // who wastes the most accelerator time
  kFailedGpuHours,  // who burns the most time on failing jobs
  kGpuHours,        // biggest consumers
  kFailureRate,     // least reliable (among principals with >= 20 jobs)
};

struct DrilldownParams {
  DrilldownKey key = DrilldownKey::kUser;
  DrilldownSort sort = DrilldownSort::kIdleGpuHours;
  std::size_t top_k = 10;
  /// Principals with fewer jobs are excluded from kFailureRate ranking
  /// (a 1-job user with 1 failure is not a hotspot).
  std::size_t min_jobs_for_rates = 20;

  void validate() const;
};

/// Aggregates `records` by user or group and returns the top-k by the
/// chosen criterion. Deterministic: ties broken by principal name.
[[nodiscard]] std::vector<PrincipalStats> drilldown(
    std::span<const trace::JobRecord> records,
    const DrilldownParams& params = {});

/// Fixed-width terminal table.
[[nodiscard]] std::string render_drilldown(
    const std::vector<PrincipalStats>& stats);

/// Column mapping for drilling into a raw trace table (e.g. a CSV
/// export). Columns set to "" are treated as absent: missing gpus ->
/// one GPU per job; missing sm-util -> no idle accounting; missing
/// status -> no failure accounting.
struct TableDrilldownSpec {
  std::string principal_column = "User";
  std::string runtime_column = "Runtime";  // seconds
  std::string gpus_column;                 // GPU count per job
  std::string sm_util_column = "SM Util";  // mean %, 0 = idle
  std::string status_column = "Status";
  std::string failed_label = "Failed";
  std::string killed_label = "Killed";
};

/// Drill-down straight from a table. Returns an Error when a named
/// column is missing or has the wrong type.
[[nodiscard]] Result<std::vector<PrincipalStats>> drilldown_from_table(
    const prep::Table& table, const TableDrilldownSpec& spec,
    const DrilldownParams& params = {});

}  // namespace gpumine::analysis
