// Small descriptive-statistics toolkit backing the figure benches
// (CDFs for Fig. 4, box stats for Fig. 2, shares for Fig. 5).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace gpumine::analysis {

/// Linear-interpolated quantile of unsorted data, q in [0, 1].
[[nodiscard]] double quantile(std::span<const double> values, double q);

/// Five-number summary for a box plot.
struct BoxStats {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  std::size_t count = 0;
};

[[nodiscard]] BoxStats box_stats(std::span<const double> values);

/// Empirical CDF evaluated at `points` evenly spaced values of the data
/// range (plus the exact min and max). Returns (x, P[X <= x]) pairs.
[[nodiscard]] std::vector<std::pair<double, double>> cdf(
    std::span<const double> values, std::size_t points = 32);

/// Fraction of values <= x.
[[nodiscard]] double cdf_at(std::span<const double> values, double x);

}  // namespace gpumine::analysis
