// Hold-out validation of mined rules.
//
// A rule's confidence and lift are estimates from the trace they were
// mined on; before acting on a rule (or feeding it to the classifier) an
// operator wants to know how much of its strength is overfit. This
// module re-measures each rule's metrics on an independent database
// (another time window, another seed) and reports the shrinkage. Rules
// whose test-set lift collapses below the mining threshold are flagged —
// the empirical complement to the Fisher test in core/significance.hpp.
#pragma once

#include <vector>

#include "core/item_catalog.hpp"
#include "core/rules.hpp"
#include "core/transaction_db.hpp"

namespace gpumine::analysis {

struct ValidatedRule {
  core::Rule train;   // metrics as mined
  core::Rule test;    // same items, metrics recomputed on the test db
  double conf_shrinkage;  // train.confidence - test.confidence
  double lift_shrinkage;  // train.lift - test.lift
  bool survives;          // test lift still >= the given floor
};

struct ValidationSummary {
  std::vector<ValidatedRule> rules;
  std::size_t survivors = 0;
  double mean_conf_shrinkage = 0.0;
  double mean_lift_shrinkage = 0.0;
};

/// Re-measures `rules` (mined on some training trace, items from
/// `catalog`) against `test_db`, whose transactions must be encoded in
/// the SAME catalog (remap first if they are not — see the
/// ext_failure_prediction bench for the remap idiom). Rules whose
/// antecedent never occurs in the test database are dropped (their test
/// confidence is undefined).
[[nodiscard]] ValidationSummary validate_rules(
    const std::vector<core::Rule>& rules, const core::TransactionDb& test_db,
    double min_test_lift = 1.5);

}  // namespace gpumine::analysis
