// Canonical workflow configurations for the three studied traces.
//
// These encode the paper's preprocessing choices (Sec. III-E) and the
// shared mining thresholds (min support 5%, max itemset length 5, min
// lift 1.5, C_lift = C_supp = 1.5 — Secs. III-C/D). Column names match
// the synthetic generators; applying a config to a table that lacks a
// column skips that column, so the configs also work on user-supplied
// CSV traces with a subset of features.
#pragma once

#include "analysis/workflow.hpp"

namespace gpumine::analysis {

/// PAI: bins request/usage features, groups users and job groups by
/// activity share, detects the "Std" CPU/memory request spikes, and drops
/// the sparse Model column (most jobs are unlabeled).
[[nodiscard]] WorkflowConfig pai_config();

/// PAI restricted to rows with a model-type label (the Table VIII
/// PAI3/PAI4 study): keeps the Model column and requires it present.
[[nodiscard]] WorkflowConfig pai_model_config();

/// SuperCloud: fine-grained GPU metrics (utilization variance, memory
/// bandwidth, power) binned into quartiles; users grouped by share.
[[nodiscard]] WorkflowConfig supercloud_config();

/// Philly: mean/min/max SM utilization with dedicated 0% bins, retry
/// counter and GPU memory-size labels kept bare.
[[nodiscard]] WorkflowConfig philly_config();

}  // namespace gpumine::analysis
