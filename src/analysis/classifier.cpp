#include "analysis/classifier.hpp"

#include <algorithm>

#include "common/ensure.hpp"

namespace gpumine::analysis {

RuleClassifier::RuleClassifier(std::vector<core::Rule> rules,
                               core::ItemId target,
                               const ClassifierParams& params)
    : target_(target), default_positive_(params.default_positive) {
  GPUMINE_CHECK_ARG(params.min_confidence >= 0.0 &&
                        params.min_confidence <= 1.0,
                    "min_confidence must be in [0, 1]");
  for (auto& r : rules) {
    if (r.confidence + 1e-12 < params.min_confidence) continue;
    if (!core::contains(r.consequent, target)) continue;
    // No label leakage is possible past this point: antecedent and
    // consequent are disjoint by construction (core::make_rule), so a
    // rule with the target in its consequent cannot match on the target.
    rules_.push_back(std::move(r));
  }
  // CBA precedence: confidence desc, lift desc, support desc, shorter
  // antecedent first, then lexicographic for determinism.
  std::sort(rules_.begin(), rules_.end(),
            [](const core::Rule& a, const core::Rule& b) {
              if (a.confidence != b.confidence) {
                return a.confidence > b.confidence;
              }
              if (a.lift != b.lift) return a.lift > b.lift;
              if (a.support != b.support) return a.support > b.support;
              if (a.antecedent.size() != b.antecedent.size()) {
                return a.antecedent.size() < b.antecedent.size();
              }
              return a.antecedent < b.antecedent;
            });
}

std::size_t RuleClassifier::explain(
    std::span<const core::ItemId> transaction) const {
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    if (core::is_subset(rules_[i].antecedent, transaction)) return i;
  }
  return kNoRule;
}

bool RuleClassifier::predict(
    std::span<const core::ItemId> transaction) const {
  const std::size_t rule = explain(transaction);
  return rule == kNoRule ? default_positive_ : true;
}

double Evaluation::accuracy() const {
  const std::size_t total =
      true_positives + false_positives + true_negatives + false_negatives;
  return total == 0 ? 0.0
                    : static_cast<double>(true_positives + true_negatives) /
                          static_cast<double>(total);
}

double Evaluation::precision() const {
  const std::size_t predicted = true_positives + false_positives;
  return predicted == 0 ? 0.0
                        : static_cast<double>(true_positives) /
                              static_cast<double>(predicted);
}

double Evaluation::recall() const {
  const std::size_t actual = true_positives + false_negatives;
  return actual == 0 ? 0.0
                     : static_cast<double>(true_positives) /
                           static_cast<double>(actual);
}

double Evaluation::f1() const {
  const double p = precision();
  const double r = recall();
  return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

Evaluation evaluate(const RuleClassifier& classifier,
                    const core::TransactionDb& db) {
  Evaluation eval;
  for (std::size_t t = 0; t < db.size(); ++t) {
    const auto txn = db[t];
    const bool actual = core::contains(txn, classifier.target());
    const bool predicted = classifier.predict(txn);
    if (actual && predicted) {
      ++eval.true_positives;
    } else if (!actual && predicted) {
      ++eval.false_positives;
    } else if (!actual && !predicted) {
      ++eval.true_negatives;
    } else {
      ++eval.false_negatives;
    }
  }
  return eval;
}

}  // namespace gpumine::analysis
