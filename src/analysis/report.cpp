#include "analysis/report.hpp"

#include <algorithm>
#include <cstdio>

namespace gpumine::analysis {
namespace {

std::string fmt(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void append_rules(std::string& out, const std::vector<core::Rule>& rules,
                  const core::ItemCatalog& catalog, const char* prefix,
                  std::size_t max_rows, bool extra) {
  const std::size_t n = std::min(rules.size(), max_rows);
  for (std::size_t i = 0; i < n; ++i) {
    const core::Rule& r = rules[i];
    out += prefix + std::to_string(i + 1) + "  {" +
           catalog.render(r.antecedent) + "} => {" +
           catalog.render(r.consequent) + "}  supp=" + fmt(r.support) +
           " conf=" + fmt(r.confidence) + " lift=" + fmt(r.lift);
    if (extra) {
      out += " lev=" + fmt(r.leverage, 3) + " conv=" + fmt(r.conviction);
    }
    out += "\n";
  }
  if (rules.size() > max_rows) {
    out += "   ... " + std::to_string(rules.size() - max_rows) +
           " more rules elided\n";
  }
}

}  // namespace

std::string render_rule(const core::Rule& rule,
                        const core::ItemCatalog& catalog) {
  return "{" + catalog.render(rule.antecedent) + "} => {" +
         catalog.render(rule.consequent) + "}";
}

std::string render_rule_table(const core::KeywordAnalysis& analysis,
                              const core::ItemCatalog& catalog,
                              const RuleTableOptions& options) {
  std::string out;
  out += "keyword: " + catalog.name(analysis.keyword) + "\n";
  out += "rules with keyword: " + std::to_string(analysis.prune_stats.input) +
         " -> " + std::to_string(analysis.prune_stats.kept) +
         " after pruning (cond1=" +
         std::to_string(analysis.prune_stats.pruned_by[0]) + " cond2=" +
         std::to_string(analysis.prune_stats.pruned_by[1]) + " cond3=" +
         std::to_string(analysis.prune_stats.pruned_by[2]) + " cond4=" +
         std::to_string(analysis.prune_stats.pruned_by[3]) + ")\n";
  out += "-- cause analysis (keyword in consequent) --\n";
  append_rules(out, analysis.cause, catalog, "C", options.max_cause,
               options.show_extra_metrics);
  out += "-- characteristic analysis (keyword in antecedent) --\n";
  append_rules(out, analysis.characteristic, catalog, "A",
               options.max_characteristic, options.show_extra_metrics);
  return out;
}

std::string render_box(const BoxStats& stats, const std::string& label) {
  return label + ": min=" + fmt(stats.min) + " q1=" + fmt(stats.q1) +
         " median=" + fmt(stats.median) + " q3=" + fmt(stats.q3) +
         " max=" + fmt(stats.max) + " (n=" + std::to_string(stats.count) +
         ")";
}

std::string render_cdf(const std::vector<std::pair<double, double>>& points,
                       const std::string& x_label) {
  std::string out = x_label + "\tP(X<=x)\n";
  for (const auto& [x, p] : points) {
    out += fmt(x) + "\t" + fmt(p, 3) + "\n";
  }
  return out;
}

}  // namespace gpumine::analysis
