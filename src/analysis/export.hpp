// Machine-readable exports of analysis results.
//
// The terminal tables of report.hpp serve the interactive loop; real
// deployments archive rules and feed dashboards. Three formats:
//   * CSV  — one rule per row, ready for spreadsheets / pandas;
//   * JSON — nested structure with items as arrays (hand-rolled writer,
//     RFC 8259 string escaping — no third-party dependency);
//   * Markdown — the paper's table layout, ready for reports and PRs.
// All writers are deterministic: same input, byte-identical output.
#pragma once

#include <string>
#include <vector>

#include "core/item_catalog.hpp"
#include "core/miner.hpp"
#include "core/rules.hpp"

namespace gpumine::analysis {

/// CSV with header:
/// kind,antecedent,consequent,support,confidence,lift,leverage,conviction
/// `kind` is "C" for cause rows and "A" for characteristic rows; items
/// inside a side are joined with " + " (commas would fight the CSV).
[[nodiscard]] std::string rules_to_csv(const core::KeywordAnalysis& analysis,
                                       const core::ItemCatalog& catalog);

/// JSON document:
/// {"keyword": "...", "cause": [{...}], "characteristic": [{...}]}
/// with each rule as {"antecedent": [...], "consequent": [...],
/// "support": s, "confidence": c, "lift": l}.
[[nodiscard]] std::string rules_to_json(const core::KeywordAnalysis& analysis,
                                        const core::ItemCatalog& catalog);

/// GitHub-flavoured Markdown table in the paper's column layout.
[[nodiscard]] std::string rules_to_markdown(
    const core::KeywordAnalysis& analysis, const core::ItemCatalog& catalog,
    std::size_t max_rows_per_side = 10);

/// JSON string escaping per RFC 8259 (quotes, backslash, control chars).
[[nodiscard]] std::string json_escape(const std::string& text);

}  // namespace gpumine::analysis
