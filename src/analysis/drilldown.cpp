#include "analysis/drilldown.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "common/ensure.hpp"

namespace gpumine::analysis {

void DrilldownParams::validate() const {
  GPUMINE_CHECK_ARG(top_k >= 1, "top_k must be >= 1");
}

std::vector<PrincipalStats> drilldown(
    std::span<const trace::JobRecord> records,
    const DrilldownParams& params) {
  params.validate();
  std::unordered_map<std::string, PrincipalStats> by_principal;
  for (const auto& r : records) {
    const std::string& key =
        params.key == DrilldownKey::kUser ? r.user : r.group;
    if (key.empty()) continue;
    PrincipalStats& s = by_principal[key];
    if (s.principal.empty()) s.principal = key;
    ++s.jobs;
    const double hours =
        static_cast<double>(r.num_gpus) * r.runtime_s / 3600.0;
    s.gpu_hours += hours;
    const bool zero_sm = r.sm_util != trace::kUnset && r.sm_util < 0.5;
    if (zero_sm) {
      ++s.zero_sm;
      s.idle_gpu_hours += hours;
    }
    if (r.status == trace::ExitStatus::kFailed ||
        r.status == trace::ExitStatus::kTimeout) {
      ++s.failed;
      s.failed_gpu_hours += hours;
    }
    if (r.status == trace::ExitStatus::kKilled) ++s.killed;
  }

  std::vector<PrincipalStats> out;
  out.reserve(by_principal.size());
  for (auto& [key, stats] : by_principal) {
    if (params.sort == DrilldownSort::kFailureRate &&
        stats.jobs < params.min_jobs_for_rates) {
      continue;
    }
    out.push_back(std::move(stats));
  }

  const auto metric = [&](const PrincipalStats& s) {
    switch (params.sort) {
      case DrilldownSort::kIdleGpuHours:
        return s.idle_gpu_hours;
      case DrilldownSort::kFailedGpuHours:
        return s.failed_gpu_hours;
      case DrilldownSort::kGpuHours:
        return s.gpu_hours;
      case DrilldownSort::kFailureRate:
        return s.failure_rate();
    }
    return 0.0;
  };
  std::sort(out.begin(), out.end(),
            [&](const PrincipalStats& a, const PrincipalStats& b) {
              const double ma = metric(a);
              const double mb = metric(b);
              if (ma != mb) return ma > mb;
              return a.principal < b.principal;
            });
  if (out.size() > params.top_k) out.resize(params.top_k);
  return out;
}

Result<std::vector<PrincipalStats>> drilldown_from_table(
    const prep::Table& table, const TableDrilldownSpec& spec,
    const DrilldownParams& params) {
  if (spec.principal_column.empty() ||
      !table.has_column(spec.principal_column)) {
    return Error{spec.principal_column, "principal column not in table"};
  }
  if (spec.runtime_column.empty() || !table.has_column(spec.runtime_column)) {
    return Error{spec.runtime_column, "runtime column not in table"};
  }
  if (table.is_numeric(spec.principal_column)) {
    return Error{spec.principal_column, "principal column must be categorical"};
  }
  if (!table.is_numeric(spec.runtime_column)) {
    return Error{spec.runtime_column, "runtime column must be numeric"};
  }
  const auto numeric_or_null =
      [&](const std::string& name) -> Result<const prep::NumericColumn*> {
    if (name.empty() || !table.has_column(name)) return nullptr;
    if (!table.is_numeric(name)) {
      return Error{name, "column must be numeric"};
    }
    return &table.numeric(name);
  };
  auto gpus_result = numeric_or_null(spec.gpus_column);
  if (!gpus_result.ok()) return gpus_result.error();
  auto sm_result = numeric_or_null(spec.sm_util_column);
  if (!sm_result.ok()) return sm_result.error();
  const prep::NumericColumn* gpus = gpus_result.value();
  const prep::NumericColumn* sm_util = sm_result.value();
  const prep::CategoricalColumn* status = nullptr;
  if (!spec.status_column.empty() && table.has_column(spec.status_column)) {
    if (table.is_numeric(spec.status_column)) {
      return Error{spec.status_column, "status column must be categorical"};
    }
    status = &table.categorical(spec.status_column);
  }
  const auto& principal = table.categorical(spec.principal_column);
  const auto& runtime = table.numeric(spec.runtime_column);

  std::vector<trace::JobRecord> records;
  records.reserve(table.num_rows());
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    if (principal.is_missing(r) || runtime.is_missing(r)) continue;
    trace::JobRecord record;
    record.user = principal.label(r);
    record.group = record.user;  // same key either way
    record.runtime_s = runtime.values[r];
    record.num_gpus = gpus != nullptr && !gpus->is_missing(r)
                          ? static_cast<int>(gpus->values[r])
                          : 1;
    record.sm_util = sm_util != nullptr && !sm_util->is_missing(r)
                         ? sm_util->values[r]
                         : trace::kUnset;
    record.status = trace::ExitStatus::kCompleted;
    if (status != nullptr && !status->is_missing(r)) {
      if (status->label(r) == spec.failed_label) {
        record.status = trace::ExitStatus::kFailed;
      } else if (status->label(r) == spec.killed_label) {
        record.status = trace::ExitStatus::kKilled;
      }
    }
    records.push_back(std::move(record));
  }
  return drilldown(records, params);
}

std::string render_drilldown(const std::vector<PrincipalStats>& stats) {
  std::string out =
      "principal        jobs  failed  killed  zeroSM   gpu-h   idle-h  "
      "fail-h  fail%  idle%\n";
  char buf[256];
  for (const auto& s : stats) {
    std::snprintf(buf, sizeof(buf),
                  "%-15s %5zu  %6zu  %6zu  %6zu  %7.0f  %7.0f %7.0f  %5.1f  "
                  "%5.1f\n",
                  s.principal.c_str(), s.jobs, s.failed, s.killed, s.zero_sm,
                  s.gpu_hours, s.idle_gpu_hours, s.failed_gpu_hours,
                  100.0 * s.failure_rate(), 100.0 * s.idle_fraction());
    out += buf;
  }
  return out;
}

}  // namespace gpumine::analysis
