// Rule summarization: a small, diverse rule set for human consumption.
//
// Even after the Sec. III-D pruning, a keyword analysis can keep
// thousands of rules (PAI: ~2k) — the paper's tables show a hand-picked
// dozen. This module automates the picking with a greedy weighted
// set-cover: repeatedly choose the rule whose antecedent matches the
// most keyword transactions not yet covered by an already-chosen rule,
// breaking ties by lift. The result reads like the paper's tables: a
// handful of rules that jointly explain most of the phenomenon, each
// adding new coverage instead of restating the previous row.
#pragma once

#include <cstdint>
#include <vector>

#include "core/itemset.hpp"
#include "core/rules.hpp"
#include "core/transaction_db.hpp"

namespace gpumine::analysis {

struct SummaryEntry {
  core::Rule rule;
  /// Keyword transactions matched by this rule's antecedent.
  std::uint64_t matched = 0;
  /// Of those, how many no earlier summary rule had covered.
  std::uint64_t newly_covered = 0;
  /// Running fraction of all keyword transactions covered so far.
  double cumulative_coverage = 0.0;
};

struct SummarizeParams {
  std::size_t max_rules = 8;
  /// Stop early once this fraction of keyword transactions is covered.
  double target_coverage = 0.95;
  /// Skip rules that add fewer than this many new transactions.
  std::uint64_t min_new_coverage = 1;

  void validate() const;
};

/// Greedy cover of the transactions containing `keyword` by cause-rule
/// antecedents. `rules` should be cause rules for the keyword (rules
/// whose consequent lacks the keyword are ignored); `db` is the encoded
/// database the rules came from.
[[nodiscard]] std::vector<SummaryEntry> summarize_cause_rules(
    const std::vector<core::Rule>& rules, const core::TransactionDb& db,
    core::ItemId keyword, const SummarizeParams& params = {});

}  // namespace gpumine::analysis
