// Terminal rendering of analysis results in the paper's presentation
// style: rule tables with "C"/"A" row labels, box-plot summaries
// (Fig. 2), CDF tables (Fig. 4) and share breakdowns (Fig. 5).
#pragma once

#include <string>
#include <vector>

#include "analysis/stats.hpp"
#include "core/item_catalog.hpp"
#include "core/miner.hpp"
#include "core/rules.hpp"

namespace gpumine::analysis {

struct RuleTableOptions {
  std::size_t max_cause = 8;
  std::size_t max_characteristic = 5;
  bool show_extra_metrics = false;  // add leverage / conviction columns
};

/// Renders one rule as "{A, B} => {C}".
[[nodiscard]] std::string render_rule(const core::Rule& rule,
                                      const core::ItemCatalog& catalog);

/// Paper-style table: C1..Cn cause rows then A1..Am characteristic rows,
/// each with support / confidence / lift.
[[nodiscard]] std::string render_rule_table(
    const core::KeywordAnalysis& analysis, const core::ItemCatalog& catalog,
    const RuleTableOptions& options = {});

/// "min q1 median q3 max" one-liner for Fig. 2-style summaries.
[[nodiscard]] std::string render_box(const BoxStats& stats,
                                     const std::string& label);

/// Two-column x / P(X<=x) table for Fig. 4-style CDFs.
[[nodiscard]] std::string render_cdf(
    const std::vector<std::pair<double, double>>& points,
    const std::string& x_label);

}  // namespace gpumine::analysis
