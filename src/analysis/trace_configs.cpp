#include "analysis/trace_configs.hpp"

namespace gpumine::analysis {
namespace {

constexpr double kDisabled = 2.0;  // threshold > 1 turns the special bin off

prep::BinningParams plain_bins() {
  prep::BinningParams p;
  p.zero_mass_threshold = kDisabled;
  p.spike_mass_threshold = kDisabled;
  return p;
}

prep::BinningParams zero_bins(std::string label, double threshold = 0.25) {
  prep::BinningParams p;
  p.zero_label = std::move(label);
  p.zero_mass_threshold = threshold;
  p.spike_mass_threshold = kDisabled;
  return p;
}

prep::BinningParams spike_bins(double threshold = 0.35) {
  prep::BinningParams p;
  p.zero_mass_threshold = kDisabled;
  p.spike_mass_threshold = threshold;  // "Std" request detection
  return p;
}

prep::ShareGroupingParams user_grouping() {
  prep::ShareGroupingParams g;
  g.top_label = "Freq User";
  g.middle_label = "Regular User";
  g.bottom_label = "New User";
  return g;
}

WorkflowConfig pai_base() {
  WorkflowConfig c;
  c.binnings = {
      {"GPU Request", plain_bins()},
      {"CPU Request", spike_bins()},
      {"Mem Request", spike_bins()},
      {"Queue", plain_bins()},
      {"Runtime", plain_bins()},
      {"Memory Used", plain_bins()},
      {"CPU Util", zero_bins("Bin0", 0.05)},
      {"SM Util", zero_bins("0%")},
      {"GMem Used", zero_bins("0GB")},
  };
  prep::ShareGroupingParams groups;
  groups.top_label = "Freq Group";
  groups.middle_label = "Regular Group";
  groups.bottom_label = "Rare Group";
  c.groupings = {{"User", user_grouping()}, {"Group", groups}};
  c.encoder.bare_label_columns = {"User", "Group",  "Framework",
                                  "Model", "Tasks", "Status"};
  return c;
}

}  // namespace

WorkflowConfig pai_config() {
  WorkflowConfig c = pai_base();
  c.drop_columns = {"Model"};  // sparse label; studied separately
  return c;
}

WorkflowConfig pai_model_config() {
  WorkflowConfig c = pai_base();
  c.require_present = "Model";  // Sec. IV-D: NaN-model rows filtered out
  return c;
}

WorkflowConfig supercloud_config() {
  WorkflowConfig c;
  c.binnings = {
      {"Runtime", plain_bins()},     {"CPU Util", plain_bins()},
      {"SM Util", zero_bins("0%", 0.05)}, {"SM Util Var", plain_bins()},
      {"GMem Util", plain_bins()},   {"GMem Util Var", plain_bins()},
      {"GMem Used", plain_bins()},   {"GPU Power", plain_bins()},
  };
  c.groupings = {{"User", user_grouping()}};
  c.encoder.bare_label_columns = {"User", "Status"};
  return c;
}

WorkflowConfig philly_config() {
  WorkflowConfig c;
  c.binnings = {
      {"Runtime", plain_bins()},
      {"CPU Util", plain_bins()},
      {"SM Util", zero_bins("0%")},
      {"Min SM Util", zero_bins("0%")},
      {"Max SM Util", zero_bins("0%")},
  };
  c.groupings = {{"User", user_grouping()}};
  c.encoder.bare_label_columns = {"User", "GPU Count", "GPU Mem",
                                  "Num Attempts", "Status"};
  return c;
}

}  // namespace gpumine::analysis
