#include "analysis/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/ensure.hpp"

namespace gpumine::analysis {

double quantile(std::span<const double> values, double q) {
  GPUMINE_CHECK_ARG(!values.empty(), "quantile of empty data");
  GPUMINE_CHECK_ARG(q >= 0.0 && q <= 1.0, "q must be in [0, 1]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

BoxStats box_stats(std::span<const double> values) {
  GPUMINE_CHECK_ARG(!values.empty(), "box_stats of empty data");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  auto at = [&](double q) {
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(pos));
    const auto hi = static_cast<std::size_t>(std::ceil(pos));
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
  };
  return BoxStats{sorted.front(), at(0.25), at(0.50), at(0.75), sorted.back(),
                  sorted.size()};
}

std::vector<std::pair<double, double>> cdf(std::span<const double> values,
                                           std::size_t points) {
  GPUMINE_CHECK_ARG(!values.empty(), "cdf of empty data");
  GPUMINE_CHECK_ARG(points >= 2, "need at least 2 CDF points");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double lo = sorted.front();
  const double hi = sorted.back();
  std::vector<std::pair<double, double>> out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    const auto n = static_cast<std::size_t>(
        std::upper_bound(sorted.begin(), sorted.end(), x) - sorted.begin());
    out.emplace_back(x, static_cast<double>(n) /
                            static_cast<double>(sorted.size()));
  }
  return out;
}

double cdf_at(std::span<const double> values, double x) {
  GPUMINE_CHECK_ARG(!values.empty(), "cdf_at of empty data");
  std::size_t n = 0;
  for (double v : values) {
    if (v <= x) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(values.size());
}

}  // namespace gpumine::analysis
