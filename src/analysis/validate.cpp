#include "analysis/validate.hpp"

#include "common/ensure.hpp"

namespace gpumine::analysis {

ValidationSummary validate_rules(const std::vector<core::Rule>& rules,
                                 const core::TransactionDb& test_db,
                                 double min_test_lift) {
  GPUMINE_CHECK_ARG(min_test_lift >= 0.0,
                    "min_test_lift must be non-negative");
  ValidationSummary summary;
  if (test_db.empty()) return summary;

  for (const core::Rule& r : rules) {
    // One scan per rule over the test db; rule lists after pruning are
    // small, so this stays linear in |rules| * |test_db|.
    std::uint64_t sx = 0;
    std::uint64_t sy = 0;
    std::uint64_t joint = 0;
    for (std::size_t t = 0; t < test_db.size(); ++t) {
      const auto txn = test_db[t];
      const bool has_x = core::is_subset(r.antecedent, txn);
      const bool has_y = core::is_subset(r.consequent, txn);
      sx += has_x;
      sy += has_y;
      joint += has_x && has_y;
    }
    if (sx == 0 || sy == 0) continue;  // untestable on this data

    ValidatedRule v;
    v.train = r;
    v.test = core::make_rule(r.antecedent, r.consequent, joint, sx, sy,
                             test_db.size());
    v.conf_shrinkage = r.confidence - v.test.confidence;
    v.lift_shrinkage = r.lift - v.test.lift;
    v.survives = v.test.lift + 1e-12 >= min_test_lift;
    summary.rules.push_back(std::move(v));
  }

  for (const auto& v : summary.rules) {
    summary.survivors += v.survives ? 1 : 0;
    summary.mean_conf_shrinkage += v.conf_shrinkage;
    summary.mean_lift_shrinkage += v.lift_shrinkage;
  }
  if (!summary.rules.empty()) {
    const auto n = static_cast<double>(summary.rules.size());
    summary.mean_conf_shrinkage /= n;
    summary.mean_lift_shrinkage /= n;
  }
  return summary;
}

}  // namespace gpumine::analysis
