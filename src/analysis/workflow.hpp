// The end-to-end interpretable analysis workflow of Sec. III:
//
//   raw merged table
//     -> per-column discretization (binning / share grouping / merges)
//     -> one-hot transaction encoding with dominance drop
//     -> FP-Growth frequent itemsets (min support, max length)
//     -> rule generation (min lift)
//     -> keyword filtering + Conditions 1-4 pruning
//     -> cause ("C") and characteristic ("A") rule lists
//
// A WorkflowConfig captures every knob the paper exposes; the canonical
// per-trace configurations live in trace_configs.hpp.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/miner.hpp"
#include "prep/aggregate.hpp"
#include "prep/binning.hpp"
#include "prep/encoder.hpp"
#include "prep/table.hpp"

namespace gpumine::analysis {

struct ColumnBinning {
  std::string column;
  prep::BinningParams params;
};

struct ColumnGrouping {
  std::string column;
  prep::ShareGroupingParams params;
};

struct ColumnMerge {
  std::string column;
  std::unordered_map<std::string, std::string> mapping;
  std::string fallback;  // "" = keep unmapped labels
};

/// How the frequent-itemset stage executes. kDirect mines the whole
/// (deduplicated) database in one run of `algorithm`; kSon routes
/// through the two-pass partitioned engine (core::mine_partitioned) —
/// the scale-out path for traces that outgrow one FP-Growth run.
/// Results are byte-identical either way.
enum class MiningEngine {
  kDirect,
  kSon,
};

struct WorkflowConfig {
  std::vector<ColumnBinning> binnings;
  std::vector<ColumnGrouping> groupings;
  std::vector<ColumnMerge> merges;
  /// Columns removed before encoding (identifiers, unused features).
  std::vector<std::string> drop_columns;
  /// Rows removed before anything else: keep only rows where `column`
  /// is non-missing (the paper's NaN-model filtering for Table VIII).
  std::optional<std::string> require_present;

  prep::EncoderParams encoder{};
  core::MiningParams mining{};       // min support 5%, max length 5
  core::RuleParams rules{};          // min lift 1.5
  core::PruneParams pruning{};       // C_lift = C_supp = 1.5
  core::Algorithm algorithm = core::Algorithm::kFpGrowth;
  /// Execution strategy for the mining stage. kSon partitions the
  /// database into `num_partitions` slices and runs the two-pass SON
  /// engine; `algorithm` is ignored on that path (partitions always
  /// mine with FP-Growth).
  MiningEngine engine = MiningEngine::kDirect;
  /// Partition count for the kSon engine; ignored under kDirect.
  std::size_t num_partitions = 4;
  /// Worker threads for the preprocessing stages (per-column binning,
  /// encoder passes). 1 = serial; propagated into encoder.num_threads
  /// unless that was set explicitly.
  std::size_t prep_threads = 1;
  /// Fold identical transactions into weighted rows before mining.
  /// Support math runs over total weight, so results are byte-identical
  /// either way; dedup only changes how much work the miner does.
  bool dedup_transactions = true;
};

/// The preprocessed mining database plus everything needed to interpret
/// and re-derive results.
struct PreparedTrace {
  core::TransactionDb db;
  core::ItemCatalog catalog;
  std::vector<std::string> dropped_items;      // dominance casualties
  std::vector<std::pair<std::string, prep::BinSpec>> bin_specs;
  /// Stage timings recorded while preparing (binning/encoding; the CLI
  /// adds CSV time, mine() adds dedup). Copied into the mining metrics.
  core::PrepStageMetrics prep_metrics;
};

/// Runs the preprocessing half of the workflow (Sec. III-E).
[[nodiscard]] PreparedTrace prepare(prep::Table table,
                                    const WorkflowConfig& config);

struct MinedTrace {
  PreparedTrace prepared;
  core::MiningResult mined;
};

/// prepare + frequent-itemset mining (Sec. III-C).
[[nodiscard]] MinedTrace mine(prep::Table table, const WorkflowConfig& config);

/// Keyword analysis over a mined trace; `keyword_item` is the rendered
/// item name, e.g. "SM Util = 0%" or "Failed". Throws
/// std::invalid_argument when the item does not exist in the catalog
/// (wrong name, or dropped by the dominance filter).
[[nodiscard]] core::KeywordAnalysis analyze(const MinedTrace& trace,
                                            const std::string& keyword_item,
                                            const WorkflowConfig& config);

}  // namespace gpumine::analysis
