#!/usr/bin/env python3
"""Documentation consistency checks (stdlib only; run from anywhere).

Two classes of rot this catches:

1. Broken relative links: every ``[text](path)`` in README.md and
   docs/*.md whose target is a repo-relative path must resolve to an
   existing file or directory. External links (http/https/mailto),
   pure anchors (``#section``) and paths escaping the repo root (e.g.
   the CI badge's ``../../actions`` URL) are skipped.

2. Phantom examples: every ``examples/<name>.cpp`` mentioned anywhere
   in the checked documents must exist on disk AND be registered in
   examples/CMakeLists.txt, so documented examples always build.

3. Undocumented metrics: every object key appearing (recursively) in
   the stats fixture — real ``--stats-json`` output captured from the
   binary, committed at tools/fixtures/stats_fixture.json and
   regenerated from the freshly built binary by the CI bench-smoke
   job — must appear backticked in docs/OBSERVABILITY.md. Adding a
   metrics key without documenting it fails CI. Override the fixture
   path with ``--stats-fixture PATH``.

Exit code 0 when clean, 1 with one line per problem otherwise.
"""

import json
import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

# [text](target) — target up to the first closing paren (no nesting in
# our docs); images ![alt](target) match the same pattern.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
EXAMPLE = re.compile(r"examples/([A-Za-z0-9_]+)\.cpp")


def checked_documents():
    docs = [REPO / "README.md"]
    docs.extend(sorted((REPO / "docs").glob("*.md")))
    return [d for d in docs if d.is_file()]


def check_links(doc, problems):
    text = doc.read_text(encoding="utf-8")
    for match in LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = target.split("#", 1)[0]  # drop anchors on relative links
        if not path:
            continue
        resolved = (doc.parent / path).resolve()
        if not resolved.is_relative_to(REPO):
            continue  # escapes the repo (e.g. GitHub-relative badge URL)
        if not resolved.exists():
            problems.append(
                f"{doc.relative_to(REPO)}: broken link '{target}'"
            )


def check_examples(doc, problems, registered):
    text = doc.read_text(encoding="utf-8")
    for name in sorted(set(EXAMPLE.findall(text))):
        source = REPO / "examples" / f"{name}.cpp"
        if not source.is_file():
            problems.append(
                f"{doc.relative_to(REPO)}: references missing "
                f"examples/{name}.cpp"
            )
        elif name not in registered:
            problems.append(
                f"{doc.relative_to(REPO)}: examples/{name}.cpp is not "
                "registered in examples/CMakeLists.txt (it will not build)"
            )


def json_object_keys(value, keys):
    """Every dict key reachable from `value`, recursing through
    containers (list elements share a schema, so all are visited)."""
    if isinstance(value, dict):
        for key, child in value.items():
            keys.add(key)
            json_object_keys(child, keys)
    elif isinstance(value, list):
        for child in value:
            json_object_keys(child, keys)


def check_stats_schema(fixture, problems):
    handbook = REPO / "docs" / "OBSERVABILITY.md"
    if not fixture.is_file():
        problems.append(f"stats fixture missing: {fixture}")
        return
    if not handbook.is_file():
        problems.append("docs/OBSERVABILITY.md missing (metrics handbook)")
        return
    try:
        documents = json.loads(fixture.read_text(encoding="utf-8"))
    except json.JSONDecodeError as err:
        problems.append(f"stats fixture is not valid JSON: {err}")
        return
    keys = set()
    json_object_keys(documents, keys)
    # The fixture's own wrapper keys label the documents, not metrics.
    keys -= {"mine", "server"}
    # A key is documented when it appears inline-backticked in the
    # handbook (table cells and prose both use `key` form). Fenced
    # code blocks are stripped first — their triple backticks would
    # otherwise break the inline pairing.
    text = re.sub(r"```.*?```", "", handbook.read_text(), flags=re.S)
    documented = set(re.findall(r"`([^`\n]+)`", text))
    for key in sorted(keys):
        if key not in documented:
            problems.append(
                f"docs/OBSERVABILITY.md: stats key '{key}' (emitted by "
                "the binary, present in the fixture) is undocumented"
            )


def main():
    cmake = REPO / "examples" / "CMakeLists.txt"
    registered = set(
        re.findall(r"add_executable\((\w+)", cmake.read_text())
    ) | set(re.findall(r"gpumine_add_example\((\w+)", cmake.read_text()))

    fixture = REPO / "tools" / "fixtures" / "stats_fixture.json"
    args = sys.argv[1:]
    if "--stats-fixture" in args:
        fixture = pathlib.Path(args[args.index("--stats-fixture") + 1])

    problems = []
    docs = checked_documents()
    for doc in docs:
        check_links(doc, problems)
        check_examples(doc, problems, registered)
    check_stats_schema(fixture, problems)

    for problem in problems:
        print(problem)
    print(
        f"check_docs: {len(docs)} documents, {len(problems)} problem(s)",
        file=sys.stderr,
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
